package systems

import (
	"fmt"

	"probequorum/internal/bitset"
	"probequorum/internal/quorum"
)

// RecMaj is the recursive majority quorum system: the universe is the set
// of n = m^h leaves of a complete m-ary tree (m odd) whose internal nodes
// are strict-majority gates. RecMaj(3, h) is exactly Kumar's HQS; larger
// arities are the natural generalization the paper's §3.4 machinery
// suggests, included here as an extension.
//
// Every quorum has the uniform size ((m+1)/2)^h.
type RecMaj struct {
	m int
	h int
	n int
}

var (
	_ quorum.System = (*RecMaj)(nil)
	_ quorum.Finder = (*RecMaj)(nil)
	_ quorum.Sized  = (*RecMaj)(nil)
)

// NewRecMaj returns the recursive m-ary majority system of the given
// height. m must be odd and at least 3 (self-dual gates compose to a
// nondominated coterie); height 0 is a single element.
func NewRecMaj(m, height int) (*RecMaj, error) {
	if m < 3 || m%2 == 0 {
		return nil, fmt.Errorf("systems: RecMaj requires odd arity >= 3, got %d", m)
	}
	if height < 0 {
		return nil, fmt.Errorf("systems: RecMaj height must be nonnegative, got %d", height)
	}
	n := 1
	for i := 0; i < height; i++ {
		if n > 1<<20/m {
			return nil, fmt.Errorf("systems: RecMaj(%d, %d) universe too large", m, height)
		}
		n *= m
	}
	return &RecMaj{m: m, h: height, n: n}, nil
}

// Name implements quorum.System.
func (r *RecMaj) Name() string { return fmt.Sprintf("RecMaj(m=%d,h=%d,n=%d)", r.m, r.h, r.n) }

// Size implements quorum.System.
func (r *RecMaj) Size() int { return r.n }

// Arity returns the gate fan-in m.
func (r *RecMaj) Arity() int { return r.m }

// Height returns the gate-tree height.
func (r *RecMaj) Height() int { return r.h }

// GateThreshold returns the per-gate majority threshold (m+1)/2.
func (r *RecMaj) GateThreshold() int { return (r.m + 1) / 2 }

// QuorumSize returns the uniform quorum cardinality ((m+1)/2)^h.
func (r *RecMaj) QuorumSize() int {
	c := 1
	for i := 0; i < r.h; i++ {
		c *= r.GateThreshold()
	}
	return c
}

// MinQuorumSize implements quorum.Sized.
func (r *RecMaj) MinQuorumSize() int { return r.QuorumSize() }

// MaxQuorumSize implements quorum.Sized.
func (r *RecMaj) MaxQuorumSize() int { return r.QuorumSize() }

// ContainsQuorum implements quorum.System.
func (r *RecMaj) ContainsQuorum(s *bitset.Set) bool {
	return r.eval(0, r.n, s)
}

func (r *RecMaj) eval(start, size int, s *bitset.Set) bool {
	if size == 1 {
		return s.Contains(start)
	}
	sub := size / r.m
	cnt := 0
	for i := 0; i < r.m; i++ {
		if r.eval(start+i*sub, sub, s) {
			cnt++
			if cnt == r.GateThreshold() {
				return true
			}
		}
	}
	return false
}

// Quorums implements quorum.System by minterm enumeration. It panics when
// the count explodes (arity 3 up to height 3, arity 5 up to height 1).
func (r *RecMaj) Quorums() []*bitset.Set {
	count := r.countQuorums()
	if count < 0 || count > 1<<18 {
		panic(fmt.Sprintf("systems: RecMaj.Quorums infeasible for %s", r.Name()))
	}
	return r.enumerate(0, r.n)
}

// countQuorums returns the number of minimal quorums, or -1 on overflow:
// q(h) = C(m, t) * q(h-1)^t with t = (m+1)/2.
func (r *RecMaj) countQuorums() int {
	t := r.GateThreshold()
	choose := binom(r.m, t)
	count := 1
	for i := 0; i < r.h; i++ {
		// count' = choose * count^t
		next := choose
		for j := 0; j < t; j++ {
			if next > 1<<30/maxInt(count, 1) {
				return -1
			}
			next *= count
		}
		count = next
	}
	return count
}

func binom(n, k int) int {
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (r *RecMaj) enumerate(start, size int) []*bitset.Set {
	if size == 1 {
		return []*bitset.Set{bitset.FromSlice(r.n, []int{start})}
	}
	sub := size / r.m
	children := make([][]*bitset.Set, r.m)
	for i := 0; i < r.m; i++ {
		children[i] = r.enumerate(start+i*sub, sub)
	}
	t := r.GateThreshold()
	var out []*bitset.Set
	idx := make([]int, t)
	var chooseChildren func(from, taken int, chosen []int)
	chooseChildren = func(from, taken int, chosen []int) {
		if taken == t {
			r.crossProduct(children, chosen, 0, bitset.New(r.n), &out)
			return
		}
		for c := from; c <= r.m-(t-taken); c++ {
			chosen[taken] = c
			chooseChildren(c+1, taken+1, chosen)
		}
	}
	chooseChildren(0, 0, idx)
	return out
}

// crossProduct unions one quorum from each chosen child subtree.
func (r *RecMaj) crossProduct(children [][]*bitset.Set, chosen []int, i int, acc *bitset.Set, out *[]*bitset.Set) {
	if i == len(chosen) {
		*out = append(*out, acc.Clone())
		return
	}
	for _, q := range children[chosen[i]] {
		saved := acc.Clone()
		acc.UnionWith(q)
		r.crossProduct(children, chosen, i+1, acc, out)
		acc.Clear()
		acc.UnionWith(saved)
	}
}

// ContainsQuorumMask implements quorum.MaskSystem: the m-ary majority
// gate recursion evaluated directly on mask bits.
func (r *RecMaj) ContainsQuorumMask(mask uint64) bool {
	maskGuard("RecMaj", r.n)
	return r.evalMask(0, r.n, mask)
}

func (r *RecMaj) evalMask(start, size int, mask uint64) bool {
	if size == 1 {
		return mask>>uint(start)&1 != 0
	}
	sub := size / r.m
	cnt := 0
	for i := 0; i < r.m; i++ {
		if r.evalMask(start+i*sub, sub, mask) {
			cnt++
			if cnt == r.GateThreshold() {
				return true
			}
		}
	}
	return false
}

// ContainsQuorumWords implements quorum.WideMaskSystem: the m-ary
// majority gate recursion over leaf ranges with word-bit tests.
func (r *RecMaj) ContainsQuorumWords(words []uint64) bool {
	return r.evalWords(0, r.n, words)
}

func (r *RecMaj) evalWords(start, size int, words []uint64) bool {
	if size == 1 {
		return quorum.WordBit(words, start)
	}
	sub := size / r.m
	cnt := 0
	for i := 0; i < r.m; i++ {
		if r.evalWords(start+i*sub, sub, words) {
			cnt++
			if cnt == r.GateThreshold() {
				return true
			}
		}
	}
	return false
}

// QuorumMasks implements quorum.MaskSystem via the minterm enumeration of
// Quorums, sharing its feasibility panic.
func (r *RecMaj) QuorumMasks() []uint64 {
	maskGuard("RecMaj", r.n)
	return quorum.MasksOf(r.Quorums())
}

// FindQuorumWithin implements quorum.Finder.
func (r *RecMaj) FindQuorumWithin(allowed *bitset.Set) (*bitset.Set, bool) {
	q := r.find(0, r.n, allowed)
	return q, q != nil
}

func (r *RecMaj) find(start, size int, allowed *bitset.Set) *bitset.Set {
	if size == 1 {
		if allowed.Contains(start) {
			return bitset.FromSlice(r.n, []int{start})
		}
		return nil
	}
	sub := size / r.m
	t := r.GateThreshold()
	var ok []*bitset.Set
	for i := 0; i < r.m && len(ok) < t; i++ {
		if s := r.find(start+i*sub, sub, allowed); s != nil {
			ok = append(ok, s)
		}
	}
	if len(ok) < t {
		return nil
	}
	u := bitset.New(r.n)
	for _, s := range ok {
		u.UnionWith(s)
	}
	return u
}
