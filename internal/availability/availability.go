// Package availability computes F_p(S), the probability that a quorum
// system contains no live quorum when every element independently fails
// with probability p (Peleg & Wool [13], used throughout §3 of the paper).
//
// Closed forms are provided per construction — binomial tail for Maj, a
// bottom-up row DP for crumbling walls, and the gate recursions for Tree
// and HQS — alongside brute-force enumeration and Monte Carlo estimators
// for cross-validation.
package availability

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"probequorum/internal/bitset"
	"probequorum/internal/coloring"
	"probequorum/internal/quorum"
)

// Maj returns F_p(Maj) over n (odd) elements: the probability that fewer
// than (n+1)/2 elements are live, i.e. the lower binomial tail
// sum_{i<= (n-1)/2} C(n,i) q^i p^{n-i}.
func Maj(n int, p float64) float64 {
	checkP(p)
	if n <= 0 || n%2 == 0 {
		panic(fmt.Sprintf("availability: Maj requires odd positive n, got %d", n))
	}
	q := 1 - p
	total := 0.0
	for i := 0; i <= (n-1)/2; i++ {
		total += math.Exp(logChoose(n, i) + float64(i)*safeLog(q) + float64(n-i)*safeLog(p))
	}
	return clampProb(total)
}

// CW returns F_p for the crumbling wall with the given row widths. A green
// quorum exists iff some row is fully green with every row below it
// containing a green element; scanning rows bottom-up, the DP tracks the
// probability that a quorum has been found and the probability that no
// quorum was found but every row so far has a green element.
func CW(widths []int, p float64) float64 {
	checkP(p)
	if len(widths) == 0 {
		panic("availability: CW requires at least one row")
	}
	q := 1 - p
	found := 0.0  // P(quorum among processed suffix rows)
	allHit := 1.0 // P(no quorum yet, every processed row has a green element)
	for i := len(widths) - 1; i >= 0; i-- {
		w := float64(widths[i])
		pg := math.Pow(q, w)     // row fully green
		ph := 1 - math.Pow(p, w) // row has at least one green element
		found += allHit * pg
		allHit *= ph - pg
	}
	return clampProb(1 - found)
}

// Wheel returns F_p for the wheel system over n elements, using the
// closed form: a live quorum exists iff the hub is live with some live rim
// element, or the whole rim is live.
func Wheel(n int, p float64) float64 {
	checkP(p)
	if n < 3 {
		panic(fmt.Sprintf("availability: Wheel requires n >= 3, got %d", n))
	}
	q := 1 - p
	rim := float64(n - 1)
	avail := q*(1-math.Pow(p, rim)) + p*math.Pow(q, rim)
	return clampProb(1 - avail)
}

// Tree returns F_p for the tree system of height h via the recursion
// a(0) = q, a(i) = q(2a - a^2) + p a^2 over the subtree live-probability a.
func Tree(h int, p float64) float64 {
	checkP(p)
	if h < 0 {
		panic(fmt.Sprintf("availability: negative tree height %d", h))
	}
	q := 1 - p
	a := q
	for i := 1; i <= h; i++ {
		a = q*(2*a-a*a) + p*a*a
	}
	return clampProb(1 - a)
}

// HQS returns F_p for the hierarchical quorum system of height h via the
// 2-of-3 gate recursion b(0) = q, b(i) = 3b^2 - 2b^3.
func HQS(h int, p float64) float64 {
	checkP(p)
	if h < 0 {
		panic(fmt.Sprintf("availability: negative HQS height %d", h))
	}
	b := 1 - p
	for i := 1; i <= h; i++ {
		b = 3*b*b - 2*b*b*b
	}
	return clampProb(1 - b)
}

// RecMaj returns F_p for the recursive m-ary majority system of height h
// (m odd) via the gate recursion b' = P(Binomial(m, b) >= (m+1)/2).
// RecMaj(3, h, p) coincides with HQS(h, p).
func RecMaj(m, h int, p float64) float64 {
	checkP(p)
	if m < 3 || m%2 == 0 {
		panic(fmt.Sprintf("availability: RecMaj requires odd arity >= 3, got %d", m))
	}
	if h < 0 {
		panic(fmt.Sprintf("availability: negative RecMaj height %d", h))
	}
	t := (m + 1) / 2
	b := 1 - p
	for i := 1; i <= h; i++ {
		next := 0.0
		for j := t; j <= m; j++ {
			next += math.Exp(logChoose(m, j) + float64(j)*safeLog(b) + float64(m-j)*safeLog(1-b))
		}
		b = clampProb(next)
	}
	return clampProb(1 - b)
}

// Vote returns F_p for the weighted-voting system with the given weights
// (odd total): the probability that the live weight stays below the
// majority threshold, computed by an O(n*W) knapsack-style DP over the
// distribution of live weight.
func Vote(weights []int, p float64) float64 {
	checkP(p)
	if len(weights) == 0 {
		panic("availability: Vote requires at least one element")
	}
	total := 0
	for _, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("availability: Vote weight must be positive, got %d", w))
		}
		total += w
	}
	if total%2 == 0 {
		panic(fmt.Sprintf("availability: Vote requires odd total weight, got %d", total))
	}
	q := 1 - p
	// dist[w] = P(live weight == w) over the processed prefix.
	dist := make([]float64, total+1)
	dist[0] = 1
	maxW := 0
	for _, w := range weights {
		for v := maxW; v >= 0; v-- {
			if dist[v] == 0 {
				continue
			}
			dist[v+w] += dist[v] * q
			dist[v] *= p
		}
		maxW += w
	}
	threshold := (total + 1) / 2
	fail := 0.0
	for v := 0; v < threshold; v++ {
		fail += dist[v]
	}
	return clampProb(fail)
}

// BruteForce returns F_p(S) by exhaustive enumeration of all 2^n failure
// patterns. Systems with a native mask path (all built-in constructions)
// are enumerated as word masks — no per-coloring bitsets — with the
// pattern probability looked up by red count; other systems fall back to
// coloring enumeration. It panics for n > 24.
func BruteForce(sys quorum.System, p float64) float64 {
	checkP(p)
	n := sys.Size()
	if n > 24 {
		panic(fmt.Sprintf("availability: BruteForce limited to n <= 24, got %d", n))
	}
	total := 0.0
	if ms, ok := sys.(quorum.MaskSystem); ok {
		probOfReds := redCountProbs(n, p)
		full := quorum.FullMask(n)
		for reds := uint64(0); reds <= full; reds++ {
			if !ms.ContainsQuorumMask(full &^ reds) {
				total += probOfReds[bits.OnesCount64(reds)]
			}
		}
		return clampProb(total)
	}
	coloring.All(n, func(col *coloring.Coloring) bool {
		if !sys.ContainsQuorum(col.GreenSet()) {
			total += col.Probability(p)
		}
		return true
	})
	return clampProb(total)
}

// redCountProbs returns the IID(p) probability of each fixed coloring with
// r red elements, for r = 0..n, multiplied in the same order as
// coloring.Probability so mask enumeration reproduces its sums exactly.
func redCountProbs(n int, p float64) []float64 {
	out := make([]float64, n+1)
	for r := 0; r <= n; r++ {
		prob := 1.0
		for i := 0; i < r; i++ {
			prob *= p
		}
		for i := 0; i < n-r; i++ {
			prob *= 1 - p
		}
		out[r] = prob
	}
	return out
}

// MonteCarlo estimates F_p(S) from the given number of IID trials. For
// mask-native systems each trial draws a word mask directly — consuming
// the same PRNG stream as coloring.IID, so estimates are unchanged — and
// performs no allocation. Wide-mask systems above one word route through
// ContainsQuorumWords with two per-call word buffers reused across every
// trial; only systems without any mask capability fall back to
// per-coloring bitsets.
func MonteCarlo(sys quorum.System, p float64, trials int, rng *rand.Rand) float64 {
	checkP(p)
	if trials <= 0 {
		panic(fmt.Sprintf("availability: trials must be positive, got %d", trials))
	}
	n := sys.Size()
	fails := 0
	if ms, ok := sys.(quorum.MaskSystem); ok && n <= quorum.MaskWords {
		full := quorum.FullMask(n)
		for i := 0; i < trials; i++ {
			var reds uint64
			for e := 0; e < n; e++ {
				if rng.Float64() < p {
					reds |= bitset.Bit(e)
				}
			}
			if !ms.ContainsQuorumMask(full &^ reds) {
				fails++
			}
		}
		return float64(fails) / float64(trials)
	}
	if ws, ok := sys.(quorum.WideMaskSystem); ok {
		reds := make([]uint64, quorum.WordCount(n))
		greens := make([]uint64, quorum.WordCount(n))
		for i := 0; i < trials; i++ {
			coloring.IIDWordsInto(reds, n, p, rng)
			quorum.ComplementWordsInto(greens, reds, n)
			if !ws.ContainsQuorumWords(greens) {
				fails++
			}
		}
		return float64(fails) / float64(trials)
	}
	for i := 0; i < trials; i++ {
		col := coloring.IID(n, p, rng)
		if !sys.ContainsQuorum(col.GreenSet()) {
			fails++
		}
	}
	return float64(fails) / float64(trials)
}

// Of dispatches through the quorum.ExactAvailability capability — every
// built-in construction implements it with its closed form — falling
// back to brute-force enumeration for systems without one (small
// universes only).
func Of(sys quorum.System, p float64) float64 {
	if ea, ok := sys.(quorum.ExactAvailability); ok {
		return ea.AvailabilityIID(p)
	}
	return BruteForce(sys, p)
}

func checkP(p float64) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("availability: probability %v out of [0,1]", p))
	}
}

func clampProb(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func safeLog(x float64) float64 {
	if x == 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}

// logChoose returns log C(n, k).
func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
