package availability_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"probequorum/internal/availability"

	"probequorum/internal/bitset"
	"probequorum/internal/quorum"
	"probequorum/internal/systems"
)

func TestMajClosedForm(t *testing.T) {
	// Maj over 1 element: F_p = p.
	for _, p := range []float64{0, 0.2, 0.5, 1} {
		if got := availability.Maj(1, p); math.Abs(got-p) > 1e-12 {
			t.Errorf("availability.Maj(1, %v) = %v, want %v", p, got, p)
		}
	}
	// Maj3 at p = 1/2: F = P(at most 1 green of 3) = (1 + 3)/8 = 0.5.
	if got := availability.Maj(3, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("availability.Maj(3, 0.5) = %v, want 0.5", got)
	}
}

func TestClosedFormsMatchBruteForce(t *testing.T) {
	maj, _ := systems.NewMaj(7)
	wheel, _ := systems.NewWheel(6)
	cw, _ := systems.NewCW([]int{1, 3, 2, 4})
	tree, _ := systems.NewTree(2)
	hqs, _ := systems.NewHQS(2)
	cases := []struct {
		sys    quorum.System
		closed func(p float64) float64
	}{
		{maj, func(p float64) float64 { return availability.Maj(7, p) }},
		{wheel, func(p float64) float64 { return availability.Wheel(6, p) }},
		{cw, func(p float64) float64 { return availability.CW([]int{1, 3, 2, 4}, p) }},
		{tree, func(p float64) float64 { return availability.Tree(2, p) }},
		{hqs, func(p float64) float64 { return availability.HQS(2, p) }},
	}
	for _, c := range cases {
		t.Run(c.sys.Name(), func(t *testing.T) {
			for _, p := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
				got := c.closed(p)
				want := availability.BruteForce(c.sys, p)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("p=%v: closed form %.9f != brute force %.9f", p, got, want)
				}
			}
		})
	}
}

// Fact 2.3(2): F_p(S) + F_{1-p}(S) = 1 for ND coteries.
func TestSelfDualComplement(t *testing.T) {
	closed := []func(p float64) float64{
		func(p float64) float64 { return availability.Maj(9, p) },
		func(p float64) float64 { return availability.Wheel(8, p) },
		func(p float64) float64 { return availability.CW([]int{1, 2, 3, 4}, p) },
		func(p float64) float64 { return availability.Tree(3, p) },
		func(p float64) float64 { return availability.HQS(3, p) },
	}
	for i, f := range closed {
		for _, p := range []float64{0.1, 0.25, 0.5, 0.8} {
			if got := f(p) + f(1-p); math.Abs(got-1) > 1e-9 {
				t.Errorf("case %d p=%v: F_p + F_{1-p} = %v, want 1", i, p, got)
			}
		}
	}
}

// Fact 2.3(1): F_p <= p for p <= 1/2 on ND coteries.
func TestAvailabilityBoundedByP(t *testing.T) {
	for _, p := range []float64{0.05, 0.2, 0.35, 0.5} {
		checks := map[string]float64{
			"availability.Maj(21)":     availability.Maj(21, p),
			"availability.Wheel(10)":   availability.Wheel(10, p),
			"availability.CW(1,2,3,4)": availability.CW([]int{1, 2, 3, 4}, p),
			"availability.Tree(4)":     availability.Tree(4, p),
			"availability.HQS(4)":      availability.HQS(4, p),
		}
		for name, f := range checks {
			if f > p+1e-12 {
				t.Errorf("%s: F_%v = %v > p", name, p, f)
			}
		}
	}
}

// High-availability systems get better with size at small p (the Condorcet
// effect for majority).
func TestMajCondorcet(t *testing.T) {
	p := 0.2
	prev := 1.0
	for _, n := range []int{3, 9, 21, 51} {
		f := availability.Maj(n, p)
		if f >= prev {
			t.Errorf("availability.Maj(%d): F = %v did not decrease (prev %v)", n, f, prev)
		}
		prev = f
	}
	// At p > 1/2 the effect reverses toward certain failure.
	if f := availability.Maj(101, 0.6); f < 0.9 {
		t.Errorf("availability.Maj(101) at p=0.6: F = %v, want near 1", f)
	}
}

func TestVoteAvailability(t *testing.T) {
	// Unit weights reduce to Maj.
	for _, p := range []float64{0, 0.2, 0.5, 0.8, 1} {
		if got, want := availability.Vote([]int{1, 1, 1, 1, 1}, p), availability.Maj(5, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: Vote unit = %v, Maj = %v", p, got, want)
		}
	}
	// Weighted assignments match brute force.
	weightSets := [][]int{{3, 1, 1, 2}, {7, 2, 2, 1, 1}, {1, 2, 3, 4, 5}}
	for _, ws := range weightSets {
		v, err := systems.NewVote(ws)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0.1, 0.4, 0.5, 0.9} {
			got := availability.Vote(ws, p)
			want := availability.BruteForce(v, p)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%v p=%v: DP %.9f != brute force %.9f", ws, p, got, want)
			}
			// Self-duality (odd total weight).
			if sum := availability.Vote(ws, p) + availability.Vote(ws, 1-p); math.Abs(sum-1) > 1e-9 {
				t.Errorf("%v p=%v: F_p + F_{1-p} = %v", ws, p, sum)
			}
		}
		// Of dispatch.
		if got, want := availability.Of(v, 0.3), availability.Vote(ws, 0.3); math.Abs(got-want) > 1e-12 {
			t.Errorf("Of dispatch = %v, want %v", got, want)
		}
	}
}

func TestMonteCarloAgreesWithClosedForm(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 7))
	tree, _ := systems.NewTree(3)
	p := 0.4
	mc := availability.MonteCarlo(tree, p, 20000, rng)
	want := availability.Tree(3, p)
	if math.Abs(mc-want) > 0.02 {
		t.Errorf("MC %.4f vs closed form %.4f", mc, want)
	}
}

func TestOfDispatch(t *testing.T) {
	maj, _ := systems.NewMaj(5)
	wheel, _ := systems.NewWheel(5)
	cw, _ := systems.NewCW([]int{1, 2})
	tree, _ := systems.NewTree(1)
	hqs, _ := systems.NewHQS(1)
	for _, sys := range []quorum.System{maj, wheel, cw, tree, hqs} {
		got := availability.Of(sys, 0.3)
		want := availability.BruteForce(sys, 0.3)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: Of = %v, brute force %v", sys.Name(), got, want)
		}
	}
	// Fallback path for explicit systems: Maj3 has F_{1/2} = 1/2.
	exp, err := quorum.NewExplicit("maj3", 3, []*bitset.Set{
		bitset.FromSlice(3, []int{0, 1}),
		bitset.FromSlice(3, []int{1, 2}),
		bitset.FromSlice(3, []int{0, 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := availability.Of(exp, 0.5), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("explicit Of = %v, want %v", got, want)
	}
}

// hideMask strips the mask methods off a system, forcing the per-coloring
// fallback paths of BruteForce and MonteCarlo.
type hideMask struct{ quorum.System }

// The mask enumeration of BruteForce must reproduce the per-coloring
// fallback exactly — same patterns, same probability arithmetic, same
// summation order.
func TestBruteForceMaskMatchesColoringFallback(t *testing.T) {
	maj, _ := systems.NewMaj(9)
	wheel, _ := systems.NewWheel(7)
	cw, _ := systems.NewCW([]int{1, 2, 3, 2})
	tree, _ := systems.NewTree(2)
	vote, _ := systems.NewVote([]int{3, 2, 1, 1, 1, 1})
	for _, sys := range []quorum.System{maj, wheel, cw, tree, vote} {
		t.Run(sys.Name(), func(t *testing.T) {
			for _, p := range []float64{0, 0.15, 0.5, 0.85, 1} {
				mask := availability.BruteForce(sys, p)
				fallback := availability.BruteForce(hideMask{sys}, p)
				if mask != fallback {
					t.Errorf("p=%v: mask %v != fallback %v", p, mask, fallback)
				}
			}
		})
	}
}

// The allocation-free mask path of MonteCarlo consumes the same PRNG
// stream as the coloring path, so fixed seeds give identical estimates.
func TestMonteCarloMaskMatchesColoringFallback(t *testing.T) {
	hqs, _ := systems.NewHQS(2)
	got := availability.MonteCarlo(hqs, 0.4, 3000, rand.New(rand.NewPCG(5, 9)))
	want := availability.MonteCarlo(hideMask{hqs}, 0.4, 3000, rand.New(rand.NewPCG(5, 9)))
	if got != want {
		t.Errorf("mask MC %v != coloring MC %v", got, want)
	}
}

// The wide-mask path of MonteCarlo (n > 64) also consumes one Float64 per
// element per trial, so it is bit-identical to the per-coloring fallback
// for the same seed.
func TestMonteCarloWideMatchesColoringFallback(t *testing.T) {
	tree, _ := systems.NewTree(6) // n = 127: wide path, no single-word masks
	got := availability.MonteCarlo(tree, 0.45, 2000, rand.New(rand.NewPCG(21, 2)))
	want := availability.MonteCarlo(hideMask{tree}, 0.45, 2000, rand.New(rand.NewPCG(21, 2)))
	if got != want {
		t.Errorf("wide MC %v != coloring MC %v", got, want)
	}
}

// At wide sizes the Monte Carlo estimate must land on the closed form.
func TestMonteCarloWideAgreesWithClosedForm(t *testing.T) {
	maj, _ := systems.NewMaj(129)
	wheel, _ := systems.NewWheel(200)
	tree, _ := systems.NewTree(7)
	hqs, _ := systems.NewHQS(5)
	for _, tc := range []struct {
		sys quorum.System
		p   float64
	}{
		{maj, 0.45},
		{wheel, 0.3},
		{tree, 0.5},
		{hqs, 0.55},
	} {
		exact := availability.Of(tc.sys, tc.p)
		mc := availability.MonteCarlo(tc.sys, tc.p, 20000, rand.New(rand.NewPCG(3, 33)))
		if math.Abs(mc-exact) > 0.015 {
			t.Errorf("%s at p=%v: MC %v vs closed form %v", tc.sys.Name(), tc.p, mc, exact)
		}
	}
}
