package quorum

import (
	"fmt"
	"math/bits"
	"strings"

	"probequorum/internal/bitset"
)

// MaxWideUniverse bounds the universe size of the wide mask engine: every
// structural membership test scales to arbitrary n, but the serving stack
// sizes its per-worker word buffers, probe logs and witness scratch from
// n, so the engine draws an explicit line well above any deployed quorum
// system instead of degrading without warning.
const MaxWideUniverse = 4096

// WideMaskSystem is the wide-universe counterpart of MaskSystem: the
// characteristic function evaluated on a little-endian []uint64 element
// mask (bit e of the mask is words[e/64]>>(e%64)&1), sharing the
// internal/bitset word layout. It is the capability every hot path above
// 64 elements dispatches on.
//
// ContainsQuorumWords must agree with ContainsQuorum on the indicator set
// of the words and, for n <= MaskWords, with ContainsQuorumMask(words[0]).
// Callers pass exactly WordCount(Size()) words with no bits at or above
// Size(); implementations may read but never retain or mutate the slice.
//
// All built-in constructions implement WideMaskSystem natively at every
// size; WideMasked adapts any other System by enumerating its minimal
// quorums, guarded by EnumerationBudget.
type WideMaskSystem interface {
	System

	// ContainsQuorumWords reports whether the indicator set of the word
	// mask contains a quorum.
	ContainsQuorumWords(words []uint64) bool
}

// WordCount returns the number of 64-bit words of a wide mask over an
// n-element universe: ceil(n/64), the internal/bitset backing length.
func WordCount(n int) int { return (n + MaskWords - 1) / MaskWords }

// FullWordsInto overwrites dst with the full-universe mask of n elements
// and returns it. len(dst) must be WordCount(n).
func FullWordsInto(dst []uint64, n int) []uint64 {
	if len(dst) != WordCount(n) {
		panic(fmt.Sprintf("quorum: FullWordsInto needs %d words for n=%d, got %d", WordCount(n), n, len(dst)))
	}
	for i := range dst {
		dst[i] = ^uint64(0)
	}
	trimWords(dst, n)
	return dst
}

// FullWords returns a fresh full-universe mask of n elements.
func FullWords(n int) []uint64 { return FullWordsInto(make([]uint64, WordCount(n)), n) }

// ComplementWordsInto overwrites dst with the complement of src within an
// n-element universe and returns it. dst and src must both have
// WordCount(n) words; they may alias.
func ComplementWordsInto(dst, src []uint64, n int) []uint64 {
	if len(dst) != len(src) || len(dst) != WordCount(n) {
		panic(fmt.Sprintf("quorum: ComplementWordsInto needs %d words for n=%d, got dst=%d src=%d",
			WordCount(n), n, len(dst), len(src)))
	}
	for i, w := range src {
		dst[i] = ^w
	}
	trimWords(dst, n)
	return dst
}

// trimWords zeroes the bits at and above n in the last word.
func trimWords(words []uint64, n int) {
	if n%MaskWords != 0 && len(words) > 0 {
		words[len(words)-1] &= bitset.LowMask(n % MaskWords)
	}
}

// PopcountWords returns the number of set bits across the words.
func PopcountWords(words []uint64) int {
	c := 0
	for _, w := range words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ZeroWords clears every word of dst.
func ZeroWords(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
}

// CopyWords overwrites dst with src (equal lengths).
func CopyWords(dst, src []uint64) { copy(dst, src) }

// OrWords ORs src into dst (equal lengths).
func OrWords(dst, src []uint64) {
	for i, w := range src {
		dst[i] |= w
	}
}

// WordBit reports whether element e is set in the word mask.
func WordBit(words []uint64, e int) bool {
	return words[e/MaskWords]>>(uint(e)%MaskWords)&1 != 0
}

// SetWordBit sets element e in the word mask.
func SetWordBit(words []uint64, e int) {
	words[e/MaskWords] |= bitset.Bit(e)
}

// SubsetOfWords reports whether every bit of sub is set in super (equal
// lengths).
func SubsetOfWords(sub, super []uint64) bool {
	for i, w := range sub {
		if w&^super[i] != 0 {
			return false
		}
	}
	return true
}

// WordsOf packs a set into a fresh wide mask of WordCount(s.Len()) words.
func WordsOf(s *bitset.Set) []uint64 {
	out := make([]uint64, WordCount(s.Len()))
	for i := range out {
		out[i] = s.Word(i)
	}
	return out
}

// SetOfWords unpacks a wide mask into a fresh set over an n-element
// universe. It panics when the word count does not match or the mask has
// bits at or above n.
func SetOfWords(n int, words []uint64) *bitset.Set {
	if len(words) != WordCount(n) {
		panic(fmt.Sprintf("quorum: SetOfWords needs %d words for n=%d, got %d", WordCount(n), n, len(words)))
	}
	if n%MaskWords != 0 && len(words) > 0 && words[len(words)-1]>>(uint(n)%MaskWords) != 0 {
		panic(fmt.Sprintf("quorum: wide mask has bits above universe size %d", n))
	}
	s := bitset.New(n)
	for i, w := range words {
		for ; w != 0; w &= w - 1 {
			s.Add(i*MaskWords + bits.TrailingZeros64(w))
		}
	}
	return s
}

// EnumerationBudget bounds the minimal-quorum count the adapters (Masked,
// WideMasked) will cache for systems without a native mask path. Every
// later membership test scans the cached list, so an over-budget family
// would make the adapter itself a standing memory and latency cliff; the
// guard refuses with a BudgetError telling the caller to implement the
// capability natively. Note the count is only known after Quorums() has
// run, so the one-time enumeration cost is still paid before the
// refusal — the budget protects the retained adapter, not the probe.
// Configure it before building adapters (it is read without
// synchronization).
var EnumerationBudget = 1 << 16

// BudgetError reports that enumeration-based mask adaptation was refused
// because the system enumerates more minimal quorums than
// EnumerationBudget allows.
type BudgetError struct {
	// Name is the system's Name().
	Name string
	// Count is the enumerated quorum count; Budget the configured bound.
	Count, Budget int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("quorum: %s enumerates %d minimal quorums, above the adaptation budget %d; implement MaskSystem/WideMaskSystem natively or raise quorum.EnumerationBudget",
		e.Name, e.Count, e.Budget)
}

// BoundError reports that an engine or measure was asked to operate
// beyond its universe bound. The bound-checked entry points — spec
// parsing, the mask engines, witness tables and the exact dynamic
// programs — return it (never panic) so callers can tell "too big for
// this engine" from malformed input and pivot to the measures that
// remain available at that size.
type BoundError struct {
	// Op names the bounded operation, e.g. "exact pc" or "witness table".
	Op string
	// N is the requested universe size; Max is the inclusive bound.
	N, Max int
	// Available lists measures that still work at N, when known.
	Available []string
}

func (e *BoundError) Error() string {
	msg := fmt.Sprintf("%s requires n <= %d, got n = %d", e.Op, e.Max, e.N)
	if len(e.Available) > 0 {
		msg += fmt.Sprintf("; still available at n = %d: %s", e.N, strings.Join(e.Available, ", "))
	}
	return msg
}

// WideMasked returns a wide word-level view of sys. Systems implementing
// WideMaskSystem natively (all built-in constructions) are returned
// as-is; a system with only the single-word capability is wrapped so its
// ContainsQuorumMask serves one-word universes; any other system is
// wrapped in an adapter that enumerates and caches its minimal quorums as
// wide masks, refusing with a BudgetError beyond EnumerationBudget. It
// fails with a BoundError above MaxWideUniverse elements.
func WideMasked(sys System) (WideMaskSystem, error) {
	n := sys.Size()
	if n > MaxWideUniverse {
		return nil, &BoundError{Op: "quorum: wide mask engine", N: n, Max: MaxWideUniverse}
	}
	if ws, ok := sys.(WideMaskSystem); ok {
		return ws, nil
	}
	if ms, ok := sys.(MaskSystem); ok && n <= MaskWords {
		return &wordWide{MaskSystem: ms}, nil
	}
	quorums := sys.Quorums()
	if len(quorums) > EnumerationBudget {
		return nil, &BudgetError{Name: sys.Name(), Count: len(quorums), Budget: EnumerationBudget}
	}
	masks := make([][]uint64, len(quorums))
	for i, q := range quorums {
		masks[i] = WordsOf(q)
	}
	return &wideAdapter{System: sys, masks: masks}, nil
}

// wordWide lifts a single-word MaskSystem to the wide capability for
// universes that fit one word.
type wordWide struct {
	MaskSystem
}

func (w *wordWide) ContainsQuorumWords(words []uint64) bool {
	return w.ContainsQuorumMask(words[0])
}

// wideAdapter is the cached-enumeration WideMaskSystem for arbitrary
// systems: a membership test is a subset scan over the cached quorum
// masks.
type wideAdapter struct {
	System
	masks [][]uint64
}

func (a *wideAdapter) ContainsQuorumWords(words []uint64) bool {
	for _, q := range a.masks {
		if SubsetOfWords(q, words) {
			return true
		}
	}
	return false
}
