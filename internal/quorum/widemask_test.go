package quorum

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"probequorum/internal/bitset"
)

func TestWideWordHelpers(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 1025} {
		if got, want := WordCount(n), (n+63)/64; got != want {
			t.Fatalf("WordCount(%d) = %d, want %d", n, got, want)
		}
		full := FullWords(n)
		if got := PopcountWords(full); got != n {
			t.Fatalf("PopcountWords(FullWords(%d)) = %d", n, got)
		}
		comp := make([]uint64, WordCount(n))
		ComplementWordsInto(comp, full, n)
		if got := PopcountWords(comp); got != 0 {
			t.Fatalf("complement of full has %d bits", got)
		}
		ComplementWordsInto(comp, comp, n) // aliasing: complement in place
		if got := PopcountWords(comp); got != n {
			t.Fatalf("double complement has %d bits, want %d", got, n)
		}
	}
}

func TestWideWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{1, 64, 65, 200, 1025} {
		s := bitset.New(n)
		for e := 0; e < n; e++ {
			if rng.Float64() < 0.5 {
				s.Add(e)
			}
		}
		words := WordsOf(s)
		if got := PopcountWords(words); got != s.Count() {
			t.Fatalf("n=%d: popcount %d, set count %d", n, got, s.Count())
		}
		back := SetOfWords(n, words)
		if !back.Equal(s) {
			t.Fatalf("n=%d: round trip lost elements", n)
		}
		for e := 0; e < n; e++ {
			if WordBit(words, e) != s.Contains(e) {
				t.Fatalf("n=%d: WordBit(%d) disagrees", n, e)
			}
		}
	}
}

// wideless hides every mask capability of a system, forcing the
// enumeration adapters.
type wideless struct{ System }

func TestWideMaskedAdapters(t *testing.T) {
	quorums := []*bitset.Set{
		bitset.FromSlice(70, []int{0, 65}),
		bitset.FromSlice(70, []int{0, 66}),
		bitset.FromSlice(70, []int{65, 66}),
	}
	ex, err := NewExplicit("wide-ex", 70, quorums)
	if err != nil {
		t.Fatal(err)
	}
	// Native: Explicit implements the capability itself.
	ws, err := WideMasked(ex)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ws.(*Explicit); !ok {
		t.Fatalf("WideMasked(Explicit) returned %T, want the system itself", ws)
	}
	// Enumeration adapter: same answers as ContainsQuorum on random sets.
	ad, err := WideMasked(wideless{ex})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	words := make([]uint64, WordCount(70))
	for i := 0; i < 500; i++ {
		ZeroWords(words)
		for e := 0; e < 70; e++ {
			if rng.Float64() < 0.3 {
				SetWordBit(words, e)
			}
		}
		native := ex.ContainsQuorumWords(words)
		adapted := ad.ContainsQuorumWords(words)
		direct := ex.ContainsQuorum(SetOfWords(70, words))
		if native != direct || adapted != direct {
			t.Fatalf("draw %d: native=%v adapted=%v direct=%v", i, native, adapted, direct)
		}
	}
}

func TestWideMaskedWordBridge(t *testing.T) {
	// A MaskSystem-only system over one word gets the bridge adapter.
	small, err := NewExplicit("small", 5, []*bitset.Set{
		bitset.FromSlice(5, []int{0, 1}),
		bitset.FromSlice(5, []int{0, 2}),
		bitset.FromSlice(5, []int{1, 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Embedding only the MaskSystem interface hides Explicit's native wide
	// capability, so the bridge path is exercised.
	type maskOnly struct {
		MaskSystem
	}
	ws, err := WideMasked(maskOnly{small})
	if err != nil {
		t.Fatal(err)
	}
	for mask := uint64(0); mask < 1<<5; mask++ {
		if got, want := ws.ContainsQuorumWords([]uint64{mask}), small.ContainsQuorumMask(mask); got != want {
			t.Fatalf("mask %#b: bridge=%v native=%v", mask, got, want)
		}
	}
}

func TestEnumerationBudgetGuard(t *testing.T) {
	ex, err := NewExplicit("budget", 10, []*bitset.Set{
		bitset.FromSlice(10, []int{0, 1}),
		bitset.FromSlice(10, []int{0, 2}),
		bitset.FromSlice(10, []int{1, 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	old := EnumerationBudget
	EnumerationBudget = 2
	defer func() { EnumerationBudget = old }()

	if _, err := WideMasked(wideless{ex}); err == nil {
		t.Fatal("WideMasked ignored the enumeration budget")
	} else {
		var be *BudgetError
		if !errors.As(err, &be) || be.Count != 3 || be.Budget != 2 {
			t.Fatalf("want BudgetError{Count:3, Budget:2}, got %v", err)
		}
	}
	if _, err := Masked(wideless{ex}); err == nil {
		t.Fatal("Masked ignored the enumeration budget")
	}
}

func TestWideMaskedBounds(t *testing.T) {
	huge := wideless{stubSystem{n: MaxWideUniverse + 1}}
	_, err := WideMasked(huge)
	var be *BoundError
	if !errors.As(err, &be) || be.Max != MaxWideUniverse {
		t.Fatalf("want BoundError at MaxWideUniverse, got %v", err)
	}
	if !strings.Contains(err.Error(), "4096") {
		t.Fatalf("bound error does not name the bound: %v", err)
	}
}

// stubSystem is a size-only System for bound checks.
type stubSystem struct{ n int }

func (s stubSystem) Name() string                    { return "stub" }
func (s stubSystem) Size() int                       { return s.n }
func (s stubSystem) ContainsQuorum(*bitset.Set) bool { return false }
func (s stubSystem) Quorums() []*bitset.Set          { return nil }

func TestBoundErrorMessage(t *testing.T) {
	be := &BoundError{Op: "exact pc", N: 1025, Max: 18, Available: []string{"estimate", "availability"}}
	msg := be.Error()
	for _, want := range []string{"exact pc", "18", "1025", "estimate", "availability"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("bound error %q missing %q", msg, want)
		}
	}
}
