package quorum

import (
	"math/rand/v2"
	"testing"

	"probequorum/internal/bitset"
)

// maj3sys builds the explicit Maj3 coterie used as a composition block.
func maj3sys(t *testing.T) *Explicit {
	t.Helper()
	e, err := NewExplicit("Maj3", 3, []*bitset.Set{
		bitset.FromSlice(3, []int{0, 1}),
		bitset.FromSlice(3, []int{1, 2}),
		bitset.FromSlice(3, []int{0, 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewCompositeValidation(t *testing.T) {
	m := maj3sys(t)
	if _, err := NewComposite(nil, nil); err == nil {
		t.Error("accepted nil outer")
	}
	if _, err := NewComposite(m, []System{m, m}); err == nil {
		t.Error("accepted wrong inner count")
	}
	if _, err := NewComposite(m, []System{m, nil, m}); err == nil {
		t.Error("accepted nil inner")
	}
}

// Maj3 composed with three copies of Maj3 is exactly the height-2 HQS
// (recursive 2-of-3 majority over 9 leaves): 27 quorums of size 4.
func TestCompositeMaj3SquaredIsHQS2(t *testing.T) {
	m := maj3sys(t)
	comp, err := NewComposite(m, []System{maj3sys(t), maj3sys(t), maj3sys(t)})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Size() != 9 {
		t.Fatalf("Size = %d, want 9", comp.Size())
	}
	qs := comp.Quorums()
	if len(qs) != 27 {
		t.Fatalf("%d quorums, want 27", len(qs))
	}
	for _, q := range qs {
		if q.Count() != 4 {
			t.Errorf("quorum %v has size %d, want 4", q, q.Count())
		}
	}
	// Fig. 3's quorum {1,2,5,6} (1-based) belongs to the composition.
	fig3 := bitset.FromSlice(9, []int{0, 1, 4, 5})
	if !comp.ContainsQuorum(fig3) {
		t.Error("Fig. 3 quorum missing from the composition")
	}
	if err := CheckND(comp); err != nil {
		t.Errorf("composition of ND coteries not ND: %v", err)
	}
}

// Heterogeneous composition: a wheel-of-majorities is still an ND coterie
// with working quorum search.
func TestCompositeHeterogeneous(t *testing.T) {
	m := maj3sys(t)
	single, err := NewExplicit("unit", 1, []*bitset.Set{bitset.FromSlice(1, []int{0})})
	if err != nil {
		t.Fatal(err)
	}
	// Outer Maj3 with slots: Maj3, unit, Maj3 -> n = 7.
	comp, err := NewComposite(m, []System{maj3sys(t), single, maj3sys(t)})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Size() != 7 {
		t.Fatalf("Size = %d, want 7", comp.Size())
	}
	if err := CheckND(comp); err != nil {
		t.Errorf("heterogeneous composition not ND: %v", err)
	}
	if start, end := comp.SlotRange(1); start != 3 || end != 4 {
		t.Errorf("SlotRange(1) = [%d,%d)", start, end)
	}
	// Finder soundness on random allowed sets.
	rng := rand.New(rand.NewPCG(21, 23))
	for trial := 0; trial < 500; trial++ {
		allowed := bitset.New(comp.Size())
		for e := 0; e < comp.Size(); e++ {
			if rng.IntN(2) == 0 {
				allowed.Add(e)
			}
		}
		q, found := comp.FindQuorumWithin(allowed)
		if found != comp.ContainsQuorum(allowed) {
			t.Fatalf("finder disagreement on %v", allowed)
		}
		if found && (!q.SubsetOf(allowed) || !comp.ContainsQuorum(q)) {
			t.Fatalf("bad quorum %v from %v", q, allowed)
		}
	}
}

// Property: composing ND coteries preserves nondomination across random
// small block choices.
func TestCompositeNDPreservation(t *testing.T) {
	m := maj3sys(t)
	single, err := NewExplicit("unit", 1, []*bitset.Set{bitset.FromSlice(1, []int{0})})
	if err != nil {
		t.Fatal(err)
	}
	blocks := []System{m, single}
	rng := rand.New(rand.NewPCG(31, 37))
	for trial := 0; trial < 10; trial++ {
		inner := make([]System, 3)
		for i := range inner {
			inner[i] = blocks[rng.IntN(len(blocks))]
		}
		comp, err := NewComposite(m, inner)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckND(comp); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}
