package quorum

import (
	"fmt"

	"probequorum/internal/bitset"
)

// Composite is the classical coterie composition: an outer coterie over k
// logical slots, where slot i is implemented by an inner coterie over its
// own sub-universe. A set contains a composite quorum iff the slots whose
// sub-universe portion contains an inner quorum form an outer quorum.
// Composing nondominated coteries yields a nondominated coterie (the
// characteristic function is a composition of self-dual functions); the
// HQS is exactly the recursive composition of Maj3 with itself.
type Composite struct {
	name    string
	outer   System
	inner   []System
	offsets []int
	n       int
}

var (
	_ System = (*Composite)(nil)
	_ Finder = (*Composite)(nil)
)

// NewComposite builds the composition of the outer system with one inner
// system per outer element. The composite universe concatenates the inner
// universes in slot order.
func NewComposite(outer System, inner []System) (*Composite, error) {
	if outer == nil {
		return nil, fmt.Errorf("quorum: nil outer system")
	}
	if len(inner) != outer.Size() {
		return nil, fmt.Errorf("quorum: composition needs %d inner systems, got %d", outer.Size(), len(inner))
	}
	offsets := make([]int, len(inner))
	n := 0
	for i, sys := range inner {
		if sys == nil {
			return nil, fmt.Errorf("quorum: nil inner system at slot %d", i)
		}
		offsets[i] = n
		n += sys.Size()
	}
	return &Composite{
		name:    fmt.Sprintf("Composite(%s; %d slots, n=%d)", outer.Name(), len(inner), n),
		outer:   outer,
		inner:   inner,
		offsets: offsets,
		n:       n,
	}, nil
}

// Name implements System.
func (c *Composite) Name() string { return c.name }

// Size implements System.
func (c *Composite) Size() int { return c.n }

// SlotRange returns the half-open element range of inner slot i.
func (c *Composite) SlotRange(i int) (start, end int) {
	return c.offsets[i], c.offsets[i] + c.inner[i].Size()
}

// slotView extracts the sub-universe portion of s belonging to slot i.
func (c *Composite) slotView(i int, s *bitset.Set) *bitset.Set {
	start, end := c.SlotRange(i)
	sub := bitset.New(c.inner[i].Size())
	for e := start; e < end; e++ {
		if s.Contains(e) {
			sub.Add(e - start)
		}
	}
	return sub
}

// ContainsQuorum implements System.
func (c *Composite) ContainsQuorum(s *bitset.Set) bool {
	liveSlots := bitset.New(c.outer.Size())
	for i := range c.inner {
		if c.inner[i].ContainsQuorum(c.slotView(i, s)) {
			liveSlots.Add(i)
		}
	}
	return c.outer.ContainsQuorum(liveSlots)
}

// Quorums implements System: the minimal composite quorums are unions of
// one inner quorum per slot of each outer quorum. Exponential; intended
// for small compositions.
func (c *Composite) Quorums() []*bitset.Set {
	var out []*bitset.Set
	for _, oq := range c.outer.Quorums() {
		slots := oq.Elements()
		innerChoices := make([][]*bitset.Set, len(slots))
		for j, slot := range slots {
			innerChoices[j] = c.inner[slot].Quorums()
		}
		acc := bitset.New(c.n)
		c.cross(slots, innerChoices, 0, acc, &out)
	}
	return Minimize(out)
}

func (c *Composite) cross(slots []int, choices [][]*bitset.Set, j int, acc *bitset.Set, out *[]*bitset.Set) {
	if j == len(slots) {
		*out = append(*out, acc.Clone())
		return
	}
	start, _ := c.SlotRange(slots[j])
	for _, iq := range choices[j] {
		saved := acc.Clone()
		iq.ForEach(func(e int) bool {
			acc.Add(start + e)
			return true
		})
		c.cross(slots, choices, j+1, acc, out)
		acc.Clear()
		acc.UnionWith(saved)
	}
}

// FindQuorumWithin implements Finder, provided the outer and every inner
// system implement Finder.
func (c *Composite) FindQuorumWithin(allowed *bitset.Set) (*bitset.Set, bool) {
	liveSlots := bitset.New(c.outer.Size())
	innerQuorums := make([]*bitset.Set, len(c.inner))
	for i := range c.inner {
		f, ok := c.inner[i].(Finder)
		if !ok {
			return nil, false
		}
		if q, found := f.FindQuorumWithin(c.slotView(i, allowed)); found {
			innerQuorums[i] = q
			liveSlots.Add(i)
		}
	}
	of, ok := c.outer.(Finder)
	if !ok {
		return nil, false
	}
	oq, found := of.FindQuorumWithin(liveSlots)
	if !found {
		return nil, false
	}
	u := bitset.New(c.n)
	oq.ForEach(func(slot int) bool {
		start, _ := c.SlotRange(slot)
		innerQuorums[slot].ForEach(func(e int) bool {
			u.Add(start + e)
			return true
		})
		return true
	})
	return u, true
}
