package quorum

import "probequorum/internal/bitset"

// This file defines the optional capability interfaces a System may
// implement to unlock the paper's algorithms and measures. The façade
// dispatches on these interfaces instead of on concrete construction
// types, so third-party systems plug into FindWitness, ExpectedProbes,
// Availability, RenderSystem and the Spec registry by implementing the
// matching capability. (The probing capabilities Prober and
// RandomizedProber live in internal/probe, next to Oracle and Witness.)

// ExactExpectation is the capability of systems whose deterministic
// probing strategy (probe.Prober) admits a closed-form expected probe
// count under IID(p) failures. The value must equal the exact expectation
// of ProbeWitness when every element independently fails with probability
// p. Implementations panic for p outside [0, 1].
type ExactExpectation interface {
	// ExpectedProbesIID returns E[probes of ProbeWitness] under IID(p).
	ExpectedProbesIID(p float64) float64
}

// ExactAvailability is the capability of systems with a closed-form
// failure probability F_p: the probability that no live quorum exists
// when every element independently fails with probability p.
// Implementations panic for p outside [0, 1].
type ExactAvailability interface {
	// AvailabilityIID returns F_p(S) under IID(p) failures.
	AvailabilityIID(p float64) float64
}

// ExactResilience is the capability of systems that know their crash
// resilience in closed form: the largest f such that after the failure
// of ANY f elements the surviving universe still contains a quorum.
// Equivalently n - M - 1, where M is the largest subset of the universe
// containing no quorum. A system whose full universe holds no quorum
// has resilience -1 by convention (it cannot even survive zero
// failures); well-formed quorum systems report >= 0.
type ExactResilience interface {
	// Resilience returns the crash resilience of the system.
	Resilience() int
}

// Renderer is the capability of systems that can draw their layout as
// ASCII art in the style of the paper's Figs. 1-3. Elements of highlight
// are bracketed as [v]; highlight may be nil.
type Renderer interface {
	// RenderASCII returns a multi-line drawing of the system layout.
	RenderASCII(highlight *bitset.Set) string
}

// Specced is the capability of systems that can describe themselves as a
// spec string (e.g. "maj:7", "cw:1,3,2"). For constructions registered in
// the spec registry, Parse(sys.Spec()) rebuilds an equivalent system;
// systems that cannot be rebuilt from a string (Explicit) still report a
// spec for display, and Parse returns a descriptive error for it.
type Specced interface {
	// Spec returns the canonical spec string of the system.
	Spec() string
}

// Spec implements Specced for display purposes. Explicit systems are
// defined by their full quorum list, so the spec is not parseable;
// Parse("explicit:...") returns an error directing callers to
// NewExplicit.
func (e *Explicit) Spec() string { return "explicit:" + e.name }
