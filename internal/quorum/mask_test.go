package quorum_test

import (
	"context"
	"errors"
	"testing"

	"probequorum/internal/bitset"
	"probequorum/internal/quorum"
)

// explicitFixture is a small explicit coterie over 5 elements exercising
// the generic (enumeration-backed) mask paths.
func explicitFixture(t *testing.T) *quorum.Explicit {
	t.Helper()
	n := 5
	quorums := []*bitset.Set{
		bitset.FromSlice(n, []int{0, 1, 2}),
		bitset.FromSlice(n, []int{0, 3, 4}),
		bitset.FromSlice(n, []int{1, 2, 3, 4}),
	}
	e, err := quorum.NewExplicit("fixture", n, quorums)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// hideMask wraps a System, discarding its mask methods, so tests can force
// the cached-enumeration adapter and the closure-based table builder.
type hideMask struct{ quorum.System }

// directEval re-exposes only the MaskSystem methods — not the cached mask
// list (no embedding, so no promoted unexported methods) — forcing
// BuildWitnessTable's direct 2^n evaluation branch.
type directEval struct{ e *quorum.Explicit }

func (d directEval) Name() string                        { return d.e.Name() }
func (d directEval) Size() int                           { return d.e.Size() }
func (d directEval) ContainsQuorum(s *bitset.Set) bool   { return d.e.ContainsQuorum(s) }
func (d directEval) Quorums() []*bitset.Set              { return d.e.Quorums() }
func (d directEval) ContainsQuorumMask(mask uint64) bool { return d.e.ContainsQuorumMask(mask) }
func (d directEval) QuorumMasks() []uint64               { return d.e.QuorumMasks() }

func TestMaskOfRoundTrip(t *testing.T) {
	s := bitset.FromSlice(10, []int{0, 3, 9})
	mask := quorum.MaskOf(s)
	if mask != 0b1000001001 {
		t.Fatalf("MaskOf = %#b", mask)
	}
	if back := quorum.SetOfMask(10, mask); !back.Equal(s) {
		t.Fatalf("SetOfMask round trip: %v != %v", back, s)
	}
}

func TestSetOfMaskRejectsOutOfRangeBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetOfMask accepted a mask with bits above n")
		}
	}()
	quorum.SetOfMask(3, 0b1000)
}

// The adapter's word-level tests must agree with the wrapped system's
// bitset evaluation on every subset.
func TestMaskedAdapterMatchesSystem(t *testing.T) {
	base := explicitFixture(t)
	ms, err := quorum.Masked(hideMask{base})
	if err != nil {
		t.Fatal(err)
	}
	if _, native := interface{}(ms).(*quorum.Explicit); native {
		t.Fatal("Masked returned the native system for a wrapped one")
	}
	n := base.Size()
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		got := ms.ContainsQuorumMask(mask)
		want := base.ContainsQuorum(quorum.SetOfMask(n, mask))
		if got != want {
			t.Fatalf("mask %#b: adapter=%v, system=%v", mask, got, want)
		}
	}
}

// Masked must hand native implementations straight through.
func TestMaskedReturnsNativeSystem(t *testing.T) {
	base := explicitFixture(t)
	ms, err := quorum.Masked(base)
	if err != nil {
		t.Fatal(err)
	}
	if ms != quorum.MaskSystem(base) {
		t.Error("Masked wrapped a system that already implements MaskSystem")
	}
}

// The witness table must equal the characteristic function everywhere, on
// all three construction paths: enumeration seeding for cached-mask
// systems (Explicit), quorum-mask seeding plus word-level upward closure
// for plain Systems, and direct 2^n evaluation for structural
// MaskSystems (exercised separately on the built-in constructions in
// internal/systems via the strategy golden tests).
func TestWitnessTableMatchesCharacteristicFunction(t *testing.T) {
	base := explicitFixture(t)
	n := base.Size()
	for _, tc := range []struct {
		name string
		sys  quorum.System
	}{
		{"enum-backed", base},
		{"closure", hideMask{base}},
		{"direct-eval", directEval{e: base}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			table, err := quorum.BuildWitnessTable(tc.sys)
			if err != nil {
				t.Fatal(err)
			}
			for mask := uint64(0); mask < 1<<uint(n); mask++ {
				got := table.Contains(mask)
				want := base.ContainsQuorum(quorum.SetOfMask(n, mask))
				if got != want {
					t.Fatalf("mask %#b: table=%v, system=%v", mask, got, want)
				}
			}
		})
	}
}

// A universe of more than 6 elements exercises the word-pair steps of the
// upward closure (the table spans multiple uint64 words).
func TestWitnessTableClosureMultiWord(t *testing.T) {
	n := 9
	quorums := []*bitset.Set{
		bitset.FromSlice(n, []int{0, 7}),
		bitset.FromSlice(n, []int{0, 8}),
		bitset.FromSlice(n, []int{7, 8, 3}),
	}
	base, err := quorum.NewExplicit("multiword", n, quorums)
	if err != nil {
		t.Fatal(err)
	}
	table, err := quorum.BuildWitnessTable(hideMask{base})
	if err != nil {
		t.Fatal(err)
	}
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		got := table.Contains(mask)
		want := base.ContainsQuorum(quorum.SetOfMask(n, mask))
		if got != want {
			t.Fatalf("mask %#b: table=%v, system=%v", mask, got, want)
		}
	}
}

func TestBuildWitnessTableGuard(t *testing.T) {
	big := sized{n: quorum.MaxTableUniverse + 1}
	if _, err := quorum.BuildWitnessTable(big); err == nil {
		t.Error("BuildWitnessTable accepted n > MaxTableUniverse")
	}
	if _, err := quorum.Masked(sized{n: quorum.MaskWords + 1}); err == nil {
		t.Error("Masked accepted n > MaskWords")
	}
}

// sized is a stub System carrying only a universe size, for guard tests.
type sized struct{ n int }

func (s sized) Name() string                    { return "sized" }
func (s sized) Size() int                       { return s.n }
func (s sized) ContainsQuorum(*bitset.Set) bool { return false }
func (s sized) Quorums() []*bitset.Set          { return nil }

func TestBuildWitnessTableCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := quorum.BuildWitnessTableCtx(ctx, explicitFixture(t)); !errors.Is(err, context.Canceled) {
		t.Errorf("BuildWitnessTableCtx on a cancelled ctx: err = %v, want context.Canceled", err)
	}
}
