// Package quorum defines the core abstractions of the library: set systems,
// quorum systems, coteries and nondominated (ND) coteries over a finite
// universe U = {0, ..., n-1}, as in Hassin & Peleg, "Average probe
// complexity in quorum systems".
//
// A quorum system is a collection of pairwise intersecting subsets of U.
// A coterie additionally satisfies minimality (no quorum contains another).
// A coterie is nondominated if no other coterie dominates it; equivalently,
// its characteristic monotone boolean function is self-dual: for every
// 2-coloring of U, exactly one color class contains a quorum (Lemma 2.1 of
// the paper). That equivalence is the foundation of witness search and is
// exposed here as checkable predicates.
package quorum

import (
	"errors"
	"fmt"

	"probequorum/internal/bitset"
)

// System is a quorum system over the universe {0, ..., Size()-1}.
//
// ContainsQuorum is the characteristic monotone boolean function f_S of the
// system (Definition 1 in the paper): it reports whether the given set is a
// superset of some quorum. Implementations must be monotone: if s ⊆ t and
// ContainsQuorum(s), then ContainsQuorum(t).
//
// Implementations must be safe for concurrent use by multiple goroutines:
// the measurement stack (sim.Estimate trial loops, the strategy DPs'
// parallel root expansion) evaluates systems from parallel workers. The
// built-in constructions are immutable after construction; avoid mutable
// scratch state in ContainsQuorum and friends.
type System interface {
	// Name returns a short human-readable identifier, e.g. "Maj(7)".
	Name() string

	// Size returns n, the number of elements in the universe.
	Size() int

	// ContainsQuorum reports whether s contains some quorum of the system.
	ContainsQuorum(s *bitset.Set) bool

	// Quorums enumerates the minimal quorums of the system. Intended for
	// small universes (verification, exact dynamic programs); the number of
	// minimal quorums may be exponential in n.
	Quorums() []*bitset.Set
}

// Finder is an optional interface for systems that can locate a quorum
// inside an allowed subset of the universe without enumerating all quorums.
// It is the structural primitive behind the universal probing algorithm and
// witness extraction.
type Finder interface {
	// FindQuorumWithin returns a quorum contained in allowed, if one exists.
	FindQuorumWithin(allowed *bitset.Set) (*bitset.Set, bool)
}

// Sized is an optional interface for systems that know their extreme quorum
// cardinalities without enumeration.
type Sized interface {
	MinQuorumSize() int
	MaxQuorumSize() int
}

// ErrNotSelfDual is returned by CheckND when a coloring violates
// self-duality (both or neither color class contains a quorum).
var ErrNotSelfDual = errors.New("quorum: system is not a nondominated coterie (characteristic function is not self-dual)")

// IsIntersecting reports whether every pair of the given sets intersects
// (the quorum-system intersection property).
func IsIntersecting(sets []*bitset.Set) bool {
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if !sets[i].Intersects(sets[j]) {
				return false
			}
		}
	}
	return true
}

// IsAntichain reports whether no set contains another (the coterie
// minimality property). Equal sets count as a violation.
func IsAntichain(sets []*bitset.Set) bool {
	for i := 0; i < len(sets); i++ {
		for j := 0; j < len(sets); j++ {
			if i != j && sets[i].SubsetOf(sets[j]) {
				return false
			}
		}
	}
	return true
}

// IsCoterie reports whether the enumerated quorums of sys form a coterie:
// pairwise intersecting and minimal.
func IsCoterie(sys System) bool {
	qs := sys.Quorums()
	return len(qs) > 0 && IsIntersecting(qs) && IsAntichain(qs)
}

// IsTransversal reports whether r intersects every quorum of sys.
func IsTransversal(sys System, r *bitset.Set) bool {
	for _, q := range sys.Quorums() {
		if !q.Intersects(r) {
			return false
		}
	}
	return true
}

// Dominates reports whether coterie R dominates coterie S over the same
// universe: R != S and every quorum of S is a superset of some quorum of R.
func Dominates(r, s System) bool {
	rq, sq := r.Quorums(), s.Quorums()
	if sameFamily(rq, sq) {
		return false
	}
	for _, qs := range sq {
		covered := false
		for _, qr := range rq {
			if qr.SubsetOf(qs) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

func sameFamily(a, b []*bitset.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x.Equal(y) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// CheckND verifies, by exhaustive enumeration of all 2^n colorings, that
// the system's characteristic function is self-dual, i.e. that the system
// is a nondominated coterie. It returns nil on success and a wrapped
// ErrNotSelfDual naming the first violating coloring otherwise.
//
// The cost is O(2^n * cost(ContainsQuorum)); callers should restrict it to
// small universes. For n > 30 an error is returned without checking.
func CheckND(sys System) error {
	n := sys.Size()
	if n > 30 {
		return fmt.Errorf("quorum: CheckND limited to n <= 30, got %d", n)
	}
	greens := bitset.New(n)
	for mask := uint64(0); mask < bitset.Pow2(n); mask++ {
		greens.Clear()
		for e := 0; e < n; e++ {
			if mask&bitset.Bit(e) != 0 {
				greens.Add(e)
			}
		}
		g := sys.ContainsQuorum(greens)
		r := sys.ContainsQuorum(greens.Complement())
		if g == r {
			return fmt.Errorf("coloring greens=%v: green=%v red=%v: %w",
				greens, g, r, ErrNotSelfDual)
		}
	}
	return nil
}

// Minimize returns the minimal sets of the family: every set that does not
// strictly contain another set of the family. Duplicates are collapsed.
func Minimize(sets []*bitset.Set) []*bitset.Set {
	var out []*bitset.Set
	for i, s := range sets {
		minimal := true
		for j, t := range sets {
			if i == j {
				continue
			}
			if t.SubsetOf(s) && !t.Equal(s) {
				minimal = false
				break
			}
			// Collapse duplicates: keep only the first occurrence.
			if t.Equal(s) && j < i {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s.Clone())
		}
	}
	return out
}

// Dual computes the dual system of sys: the family of minimal transversals
// (minimal hitting sets) of its quorums. A coterie is nondominated iff it
// equals its dual. Exponential; intended for small universes only.
func Dual(sys System) []*bitset.Set {
	n := sys.Size()
	qs := sys.Quorums()
	if n > 22 {
		panic(fmt.Sprintf("quorum: Dual limited to n <= 22, got %d", n))
	}
	var hitting []*bitset.Set
	s := bitset.New(n)
	for mask := uint64(0); mask < bitset.Pow2(n); mask++ {
		s.Clear()
		for e := 0; e < n; e++ {
			if mask&bitset.Bit(e) != 0 {
				s.Add(e)
			}
		}
		hits := true
		for _, q := range qs {
			if !q.Intersects(s) {
				hits = false
				break
			}
		}
		if hits {
			hitting = append(hitting, s.Clone())
		}
	}
	return Minimize(hitting)
}

// MinQuorumSize returns the smallest quorum cardinality of sys, preferring
// the Sized fast path when available.
func MinQuorumSize(sys System) int {
	if sz, ok := sys.(Sized); ok {
		return sz.MinQuorumSize()
	}
	best := sys.Size() + 1
	for _, q := range sys.Quorums() {
		if c := q.Count(); c < best {
			best = c
		}
	}
	return best
}

// MaxQuorumSize returns the largest quorum cardinality of sys, preferring
// the Sized fast path when available.
func MaxQuorumSize(sys System) int {
	if sz, ok := sys.(Sized); ok {
		return sz.MaxQuorumSize()
	}
	best := 0
	for _, q := range sys.Quorums() {
		if c := q.Count(); c > best {
			best = c
		}
	}
	return best
}

// Explicit is a quorum system given by an explicit list of minimal quorums.
// It is the reference implementation used to cross-validate the structural
// constructions, and the natural representation for ad-hoc systems.
type Explicit struct {
	name    string
	n       int
	quorums []*bitset.Set
	masks   []uint64   // word masks of quorums, precomputed when n <= MaskWords
	wide    [][]uint64 // wide masks of quorums, precomputed at every size
}

var (
	_ System         = (*Explicit)(nil)
	_ Finder         = (*Explicit)(nil)
	_ Sized          = (*Explicit)(nil)
	_ MaskSystem     = (*Explicit)(nil)
	_ WideMaskSystem = (*Explicit)(nil)
)

// NewExplicit builds an explicit system over n elements with the given
// quorums (copied). It returns an error if the family is empty, any quorum
// is empty or out of range, or the family violates intersection or
// minimality.
func NewExplicit(name string, n int, quorums []*bitset.Set) (*Explicit, error) {
	if len(quorums) == 0 {
		return nil, errors.New("quorum: empty quorum family")
	}
	cp := make([]*bitset.Set, len(quorums))
	for i, q := range quorums {
		if q.Len() != n {
			return nil, fmt.Errorf("quorum: quorum %d has capacity %d, want %d", i, q.Len(), n)
		}
		if q.Empty() {
			return nil, fmt.Errorf("quorum: quorum %d is empty", i)
		}
		cp[i] = q.Clone()
	}
	if !IsIntersecting(cp) {
		return nil, errors.New("quorum: family violates the intersection property")
	}
	if !IsAntichain(cp) {
		return nil, errors.New("quorum: family violates minimality (not a coterie)")
	}
	e := &Explicit{name: name, n: n, quorums: cp, wide: make([][]uint64, len(cp))}
	for i, q := range cp {
		e.wide[i] = WordsOf(q)
	}
	if n <= MaskWords {
		e.masks = MasksOf(cp)
	}
	return e, nil
}

// Name implements System.
func (e *Explicit) Name() string { return e.name }

// Size implements System.
func (e *Explicit) Size() int { return e.n }

// ContainsQuorum implements System.
func (e *Explicit) ContainsQuorum(s *bitset.Set) bool {
	for _, q := range e.quorums {
		if q.SubsetOf(s) {
			return true
		}
	}
	return false
}

// Quorums implements System. The returned sets are copies.
func (e *Explicit) Quorums() []*bitset.Set {
	out := make([]*bitset.Set, len(e.quorums))
	for i, q := range e.quorums {
		out[i] = q.Clone()
	}
	return out
}

// ContainsQuorumMask implements MaskSystem by scanning the precomputed
// quorum word masks. It panics for universes above MaskWords elements.
func (e *Explicit) ContainsQuorumMask(mask uint64) bool {
	if e.n > MaskWords {
		panic(fmt.Sprintf("quorum: Explicit mask path requires n <= %d, got %d", MaskWords, e.n))
	}
	for _, q := range e.masks {
		if mask&q == q {
			return true
		}
	}
	return false
}

// QuorumMasks implements MaskSystem.
func (e *Explicit) QuorumMasks() []uint64 {
	if e.n > MaskWords {
		panic(fmt.Sprintf("quorum: Explicit mask path requires n <= %d, got %d", MaskWords, e.n))
	}
	out := make([]uint64, len(e.masks))
	copy(out, e.masks)
	return out
}

// cachedQuorumMasks marks Explicit as enumeration-backed so witness
// tables are built by seeding and upward closure rather than 2^n scans.
func (e *Explicit) cachedQuorumMasks() []uint64 {
	if e.n > MaskWords {
		panic(fmt.Sprintf("quorum: Explicit mask path requires n <= %d, got %d", MaskWords, e.n))
	}
	return e.masks
}

// ContainsQuorumWords implements WideMaskSystem by a subset scan over the
// precomputed wide quorum masks. Unlike the single-word path it works at
// every universe size.
func (e *Explicit) ContainsQuorumWords(words []uint64) bool {
	for _, q := range e.wide {
		if SubsetOfWords(q, words) {
			return true
		}
	}
	return false
}

// FindQuorumWithin implements Finder.
func (e *Explicit) FindQuorumWithin(allowed *bitset.Set) (*bitset.Set, bool) {
	for _, q := range e.quorums {
		if q.SubsetOf(allowed) {
			return q.Clone(), true
		}
	}
	return nil, false
}

// MinQuorumSize implements Sized.
func (e *Explicit) MinQuorumSize() int {
	best := e.n + 1
	for _, q := range e.quorums {
		if c := q.Count(); c < best {
			best = c
		}
	}
	return best
}

// MaxQuorumSize implements Sized.
func (e *Explicit) MaxQuorumSize() int {
	best := 0
	for _, q := range e.quorums {
		if c := q.Count(); c > best {
			best = c
		}
	}
	return best
}
