package quorum

import (
	"errors"
	"testing"

	"probequorum/internal/bitset"
)

// maj3 returns the explicit Maj3 system of the paper's §2.3 example:
// U = {0,1,2}, quorums = all pairs.
func maj3(t *testing.T) *Explicit {
	t.Helper()
	qs := []*bitset.Set{
		bitset.FromSlice(3, []int{0, 1}),
		bitset.FromSlice(3, []int{1, 2}),
		bitset.FromSlice(3, []int{0, 2}),
	}
	e, err := NewExplicit("Maj3", 3, qs)
	if err != nil {
		t.Fatalf("NewExplicit: %v", err)
	}
	return e
}

func TestNewExplicitValidation(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		quorums []*bitset.Set
	}{
		{"empty family", 3, nil},
		{"empty quorum", 3, []*bitset.Set{bitset.New(3)}},
		{"capacity mismatch", 3, []*bitset.Set{bitset.FromSlice(4, []int{0})}},
		{"non-intersecting", 4, []*bitset.Set{
			bitset.FromSlice(4, []int{0, 1}),
			bitset.FromSlice(4, []int{2, 3}),
		}},
		{"not minimal", 3, []*bitset.Set{
			bitset.FromSlice(3, []int{0}),
			bitset.FromSlice(3, []int{0, 1}),
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewExplicit("bad", c.n, c.quorums); err == nil {
				t.Errorf("NewExplicit(%s) succeeded, want error", c.name)
			}
		})
	}
}

func TestExplicitBasics(t *testing.T) {
	e := maj3(t)
	if e.Name() != "Maj3" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.Size() != 3 {
		t.Errorf("Size = %d", e.Size())
	}
	if got := len(e.Quorums()); got != 3 {
		t.Errorf("len(Quorums) = %d, want 3", got)
	}
	if e.MinQuorumSize() != 2 || e.MaxQuorumSize() != 2 {
		t.Errorf("quorum sizes = %d..%d, want 2..2", e.MinQuorumSize(), e.MaxQuorumSize())
	}
	if !e.ContainsQuorum(bitset.FromSlice(3, []int{0, 1, 2})) {
		t.Error("full set should contain a quorum")
	}
	if e.ContainsQuorum(bitset.FromSlice(3, []int{1})) {
		t.Error("singleton should not contain a quorum")
	}
}

func TestQuorumsReturnsCopies(t *testing.T) {
	e := maj3(t)
	qs := e.Quorums()
	qs[0].Clear()
	if !e.ContainsQuorum(bitset.FromSlice(3, []int{0, 1})) {
		t.Error("mutating returned quorum changed the system")
	}
}

func TestFindQuorumWithin(t *testing.T) {
	e := maj3(t)
	q, ok := e.FindQuorumWithin(bitset.FromSlice(3, []int{1, 2}))
	if !ok || !q.Equal(bitset.FromSlice(3, []int{1, 2})) {
		t.Errorf("FindQuorumWithin({1,2}) = %v, %v", q, ok)
	}
	if _, ok := e.FindQuorumWithin(bitset.FromSlice(3, []int{1})); ok {
		t.Error("found quorum inside a singleton")
	}
}

func TestIsIntersectingAndAntichain(t *testing.T) {
	a := bitset.FromSlice(4, []int{0, 1})
	b := bitset.FromSlice(4, []int{1, 2})
	c := bitset.FromSlice(4, []int{2, 3})
	if IsIntersecting([]*bitset.Set{a, b, c}) {
		t.Error("a and c are disjoint; IsIntersecting should be false")
	}
	if !IsIntersecting([]*bitset.Set{a, b}) {
		t.Error("a and b intersect")
	}
	super := bitset.FromSlice(4, []int{0, 1, 2})
	if IsAntichain([]*bitset.Set{a, super}) {
		t.Error("a ⊂ super violates antichain")
	}
	if !IsAntichain([]*bitset.Set{a, c}) {
		t.Error("incomparable sets form an antichain")
	}
	dup := bitset.FromSlice(4, []int{0, 1})
	if IsAntichain([]*bitset.Set{a, dup}) {
		t.Error("duplicates violate antichain")
	}
}

func TestIsCoterieAndTransversal(t *testing.T) {
	e := maj3(t)
	if !IsCoterie(e) {
		t.Error("Maj3 is a coterie")
	}
	if !IsTransversal(e, bitset.FromSlice(3, []int{0, 1})) {
		t.Error("{0,1} is a transversal of Maj3")
	}
	if IsTransversal(e, bitset.FromSlice(3, []int{0})) {
		t.Error("{0} misses quorum {1,2}")
	}
}

func TestCheckND(t *testing.T) {
	if err := CheckND(maj3(t)); err != nil {
		t.Errorf("Maj3 should be ND: %v", err)
	}
	// A dominated coterie: the singleton {{0,1}} over 3 elements. The
	// coloring greens={0}, reds={1,2} has no monochromatic quorum.
	dominated, err := NewExplicit("dom", 3, []*bitset.Set{bitset.FromSlice(3, []int{0, 1})})
	if err != nil {
		t.Fatalf("NewExplicit: %v", err)
	}
	if err := CheckND(dominated); !errors.Is(err, ErrNotSelfDual) {
		t.Errorf("CheckND(dominated) = %v, want ErrNotSelfDual", err)
	}
}

func TestDominates(t *testing.T) {
	s, err := NewExplicit("S", 3, []*bitset.Set{bitset.FromSlice(3, []int{0, 1})})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewExplicit("R", 3, []*bitset.Set{bitset.FromSlice(3, []int{0})})
	if err != nil {
		t.Fatal(err)
	}
	if !Dominates(r, s) {
		t.Error("{{0}} dominates {{0,1}}")
	}
	if Dominates(s, r) {
		t.Error("{{0,1}} does not dominate {{0}}")
	}
	if Dominates(s, s) {
		t.Error("a coterie does not dominate itself")
	}
}

func TestMinimize(t *testing.T) {
	fam := []*bitset.Set{
		bitset.FromSlice(4, []int{0, 1, 2}),
		bitset.FromSlice(4, []int{0, 1}),
		bitset.FromSlice(4, []int{0, 1}), // duplicate
		bitset.FromSlice(4, []int{3}),
	}
	min := Minimize(fam)
	if len(min) != 2 {
		t.Fatalf("Minimize returned %d sets, want 2", len(min))
	}
	want0 := bitset.FromSlice(4, []int{0, 1})
	want1 := bitset.FromSlice(4, []int{3})
	found0, found1 := false, false
	for _, s := range min {
		if s.Equal(want0) {
			found0 = true
		}
		if s.Equal(want1) {
			found1 = true
		}
	}
	if !found0 || !found1 {
		t.Errorf("Minimize = %v, want {0,1} and {3}", min)
	}
}

// The dual of an ND coterie is itself (self-duality).
func TestDualOfNDIsSelf(t *testing.T) {
	e := maj3(t)
	dual := Dual(e)
	if !sameFamily(dual, e.Quorums()) {
		t.Errorf("Dual(Maj3) = %v, want the Maj3 quorums", dual)
	}
}

// The dual of a dominated coterie differs from it.
func TestDualOfDominatedDiffers(t *testing.T) {
	s, err := NewExplicit("S", 3, []*bitset.Set{bitset.FromSlice(3, []int{0, 1})})
	if err != nil {
		t.Fatal(err)
	}
	dual := Dual(s)
	if sameFamily(dual, s.Quorums()) {
		t.Error("dominated coterie should not equal its dual")
	}
	// Its dual is {{0},{1}}: the minimal hitting sets of {{0,1}}.
	if len(dual) != 2 {
		t.Errorf("Dual = %v, want two singletons", dual)
	}
}

func TestMinMaxQuorumSizeFallback(t *testing.T) {
	// Wrap Explicit to hide the Sized interface and exercise the fallback.
	e := maj3(t)
	w := plainSystem{e}
	if MinQuorumSize(w) != 2 || MaxQuorumSize(w) != 2 {
		t.Errorf("fallback sizes = %d..%d, want 2..2", MinQuorumSize(w), MaxQuorumSize(w))
	}
	if MinQuorumSize(e) != 2 || MaxQuorumSize(e) != 2 {
		t.Errorf("sized path = %d..%d, want 2..2", MinQuorumSize(e), MaxQuorumSize(e))
	}
}

// plainSystem strips optional interfaces from a System.
type plainSystem struct{ inner System }

func (p plainSystem) Name() string                      { return p.inner.Name() }
func (p plainSystem) Size() int                         { return p.inner.Size() }
func (p plainSystem) ContainsQuorum(s *bitset.Set) bool { return p.inner.ContainsQuorum(s) }
func (p plainSystem) Quorums() []*bitset.Set            { return p.inner.Quorums() }
