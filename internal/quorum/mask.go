package quorum

import (
	"context"
	"fmt"
	"math/bits"

	"probequorum/internal/bitset"
)

// MaskWords is the number of elements a single machine word can index: the
// mask-native fast path is available exactly when the universe fits one
// uint64.
const MaskWords = 64

// MaskSystem is the word-level capability of a quorum system over a
// universe of at most 64 elements: element e is bit e of a uint64, so that
// superset tests against a precomputed quorum mask q reduce to
// mask&q == q with zero allocation.
//
// ContainsQuorumMask must agree with ContainsQuorum on the indicator set of
// the mask, and like it must be monotone. QuorumMasks must enumerate
// exactly the minimal quorums of Quorums, as word masks; it shares the
// feasibility limits of Quorums (the count may be exponential).
//
// All built-in constructions implement MaskSystem natively; Masked adapts
// any other System by caching its enumerated quorums.
type MaskSystem interface {
	System

	// ContainsQuorumMask reports whether the indicator set of mask contains
	// a quorum. Only bits [0, Size()) may be set.
	ContainsQuorumMask(mask uint64) bool

	// QuorumMasks returns the minimal quorums as word masks.
	QuorumMasks() []uint64
}

// FullMask returns the word mask of an entire n-element universe,
// handling n = MaskWords without shift overflow. It panics if n is out of
// [0, MaskWords].
func FullMask(n int) uint64 {
	if n < 0 || n > MaskWords {
		panic(fmt.Sprintf("quorum: FullMask requires 0 <= n <= %d, got %d", MaskWords, n))
	}
	if n == MaskWords {
		return ^uint64(0)
	}
	return bitset.LowMask(n)
}

// MaskOf packs a set into a word mask. It panics if the set's universe
// exceeds MaskWords elements.
func MaskOf(s *bitset.Set) uint64 {
	if s.Len() > MaskWords {
		panic(fmt.Sprintf("quorum: MaskOf requires n <= %d, got %d", MaskWords, s.Len()))
	}
	if s.Len() == 0 {
		return 0
	}
	return s.Word(0)
}

// SetOfMask unpacks a word mask into a fresh set over an n-element
// universe. It panics if n exceeds MaskWords or the mask has bits at or
// above n.
func SetOfMask(n int, mask uint64) *bitset.Set {
	if n > MaskWords {
		panic(fmt.Sprintf("quorum: SetOfMask requires n <= %d, got %d", MaskWords, n))
	}
	if n < MaskWords && mask>>uint(n) != 0 {
		panic(fmt.Sprintf("quorum: mask %#x has bits above universe size %d", mask, n))
	}
	s := bitset.New(n)
	for m := mask; m != 0; m &= m - 1 {
		s.Add(bits.TrailingZeros64(m))
	}
	return s
}

// MasksOf packs a family of sets into word masks.
func MasksOf(sets []*bitset.Set) []uint64 {
	out := make([]uint64, len(sets))
	for i, s := range sets {
		out[i] = MaskOf(s)
	}
	return out
}

// Masked returns a word-level view of sys. Systems that implement
// MaskSystem natively (all built-in constructions) are returned as-is;
// any other system is wrapped in an adapter that enumerates and caches its
// minimal quorum masks once, so that every later superset test is a scan
// of mask&q == q word comparisons. It fails with a BoundError for
// universes above MaskWords elements (use WideMasked there) and with a
// BudgetError when the enumeration would exceed EnumerationBudget.
func Masked(sys System) (MaskSystem, error) {
	if sys.Size() > MaskWords {
		return nil, &BoundError{Op: "quorum: word mask engine", N: sys.Size(), Max: MaskWords}
	}
	if ms, ok := sys.(MaskSystem); ok {
		return ms, nil
	}
	quorums := sys.Quorums()
	if len(quorums) > EnumerationBudget {
		return nil, &BudgetError{Name: sys.Name(), Count: len(quorums), Budget: EnumerationBudget}
	}
	return &maskAdapter{System: sys, masks: MasksOf(quorums)}, nil
}

// maskAdapter is the cached-enumeration MaskSystem for arbitrary systems.
type maskAdapter struct {
	System
	masks []uint64
}

func (a *maskAdapter) ContainsQuorumMask(mask uint64) bool {
	for _, q := range a.masks {
		if mask&q == q {
			return true
		}
	}
	return false
}

func (a *maskAdapter) QuorumMasks() []uint64 {
	out := make([]uint64, len(a.masks))
	copy(out, a.masks)
	return out
}

func (a *maskAdapter) cachedQuorumMasks() []uint64 { return a.masks }

// enumBacked marks mask systems whose ContainsQuorumMask is a linear scan
// over a cached quorum-mask list. For those, building a witness table by
// per-mask evaluation would cost Θ(2^n · |Q|); seeding the table with the
// cached masks and closing upward is exact and far cheaper.
type enumBacked interface {
	cachedQuorumMasks() []uint64
}

// MaxTableUniverse bounds the universe size accepted by BuildWitnessTable
// (the table holds 2^n bits).
const MaxTableUniverse = 26

// WitnessTable is the characteristic monotone boolean function of a system
// evaluated densely over all 2^n element subsets: bit m of the table is
// ContainsQuorum of the indicator set of m. It turns the witness predicate
// of the exact dynamic programs into a single word-indexed bit test.
type WitnessTable struct {
	n    int
	bits []uint64
}

// BuildWitnessTable evaluates the system's characteristic function on
// every subset of the universe. Structural MaskSystems evaluate the 2^n
// masks directly; enumeration-backed ones (Explicit, the Masked adapter)
// and plain Systems instead seed the table with their minimal quorum
// masks, and a word-level upward (superset) closure completes it in
// O(n 2^n / 64) word operations. It fails for n > MaxTableUniverse.
func BuildWitnessTable(sys System) (*WitnessTable, error) {
	return BuildWitnessTableCtx(context.Background(), sys)
}

// BuildWitnessTableCtx is BuildWitnessTable honoring cancellation: the
// 2^n evaluation loop checks ctx periodically and returns ctx.Err()
// without a table when the context is done.
func BuildWitnessTableCtx(ctx context.Context, sys System) (*WitnessTable, error) {
	n := sys.Size()
	if n > MaxTableUniverse {
		return nil, &BoundError{Op: "quorum: witness table", N: n, Max: MaxTableUniverse}
	}
	words := 1
	if n >= 6 {
		words = 1 << uint(n-6)
	}
	t := &WitnessTable{n: n, bits: make([]uint64, words)}
	var seeds []uint64
	switch ms := sys.(type) {
	case enumBacked:
		seeds = ms.cachedQuorumMasks()
	case MaskSystem:
		limit := bitset.Pow2(n)
		for m := uint64(0); m < limit; m++ {
			if m&0xFFFF == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if ms.ContainsQuorumMask(m) {
				t.bits[m>>6] |= bitset.Bit(int(m))
			}
		}
		return t, nil
	default:
		seeds = MasksOf(sys.Quorums())
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	for _, q := range seeds {
		t.bits[q>>6] |= bitset.Bit(int(q))
	}
	t.upwardClosure()
	return t, nil
}

// upwardClosure ORs every subset's bit into all of its supersets: after the
// pass, bit m is set iff some seeded mask is a subset of m. Element bits
// below 6 move inside each word with shift-and-mask steps; higher element
// bits pair whole words.
func (t *WitnessTable) upwardClosure() {
	// In-word steps: element e < 6 separates each word into 2^e-bit lanes.
	lane := [6]uint64{
		0x5555555555555555, 0x3333333333333333, 0x0F0F0F0F0F0F0F0F,
		0x00FF00FF00FF00FF, 0x0000FFFF0000FFFF, 0x00000000FFFFFFFF,
	}
	for e := 0; e < t.n && e < 6; e++ {
		shift := uint(1) << uint(e)
		for i, w := range t.bits {
			t.bits[i] = w | (w&lane[e])<<shift
		}
	}
	// Word-pair steps: element e >= 6 pairs word i with word i | 1<<(e-6).
	for e := 6; e < t.n; e++ {
		stride := 1 << uint(e-6)
		for base := 0; base < len(t.bits); base += 2 * stride {
			for i := base; i < base+stride; i++ {
				t.bits[i+stride] |= t.bits[i]
			}
		}
	}
}

// Size returns the universe size n.
func (t *WitnessTable) Size() int { return t.n }

// Words exposes the table's backing bit words for serialization (bit m
// of the concatenated words is the characteristic function at subset
// mask m). The slice is the live backing store — callers must not
// mutate it.
func (t *WitnessTable) Words() []uint64 { return t.bits }

// TableFromWords reconstructs a witness table from serialized backing
// words — the deserialization dual of Words. The word slice is adopted,
// not copied, so a table loaded from a shared mapping costs no copy; it
// must hold exactly the 2^n bits of an n-element table.
func TableFromWords(n int, words []uint64) (*WitnessTable, error) {
	if n < 0 || n > MaxTableUniverse {
		return nil, &BoundError{Op: "quorum: witness table", N: n, Max: MaxTableUniverse}
	}
	want := 1
	if n >= 6 {
		want = 1 << uint(n-6)
	}
	if len(words) != want {
		return nil, fmt.Errorf("quorum: witness table for n=%d needs %d words, got %d", n, want, len(words))
	}
	return &WitnessTable{n: n, bits: words}, nil
}

// Contains reports whether the indicator set of mask contains a quorum.
func (t *WitnessTable) Contains(mask uint64) bool {
	return t.bits[mask>>6]&bitset.Bit(int(mask)) != 0
}
