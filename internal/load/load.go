// Package load keeps the paper-named entry points for the load measure
// of Naor & Wool [12] and Holzman, Marcus & Peleg [6] — the companion
// quality measure the paper cites alongside availability and probe
// complexity (§1.2). The implementation lives in internal/rw, which
// generalizes single-role load to read/write strategies, per-node
// capacities and an exact LP optimizer; this package delegates,
// presenting the single-role view: a strategy is a distribution over
// the minimal quorums, its load the best achievable maximum element
// load, bounded below by max(1/c, c/n).
package load

import (
	"probequorum/internal/bitset"
	"probequorum/internal/quorum"
	"probequorum/internal/rw"
)

// readOnly is the unit-capacity all-reads workload under which a
// read/write strategy's load is exactly the classic single-role load.
var readOnly = rw.Workload{ReadFraction: 1}

// Strategy is a probability distribution over the minimal quorums of a
// system — the single-role view of an rw.Strategy.
type Strategy struct {
	inner *rw.Strategy
}

// Quorums returns the support quorums (not copied; do not mutate).
func (s *Strategy) Quorums() []*bitset.Set { return s.inner.ReadQuorums() }

// Probs returns the probabilities aligned with Quorums (not copied).
func (s *Strategy) Probs() []float64 { return s.inner.ReadProbs() }

// ElementLoads returns, per element, the probability that a picked quorum
// contains it.
func (s *Strategy) ElementLoads() []float64 {
	loads, err := s.inner.NodeLoads(readOnly)
	if err != nil {
		panic(err) // unreachable: the unit workload always validates
	}
	return loads
}

// Load returns the maximum element load induced by the strategy.
func (s *Strategy) Load() float64 {
	l, err := s.inner.Load(readOnly)
	if err != nil {
		panic(err) // unreachable: the unit workload always validates
	}
	return l
}

// Uniform returns the strategy that picks each minimal quorum with equal
// probability. Requires explicit quorum enumeration (small systems); it
// panics where Quorums would (over the enumeration budget), matching
// the historical behavior.
func Uniform(sys quorum.System) *Strategy {
	s, err := rw.Uniform(sys, rw.Options{Workload: readOnly})
	if err != nil {
		panic(err)
	}
	return &Strategy{inner: s}
}

// LowerBound returns the Naor–Wool bound: every strategy's load is at
// least max(1/c, c/n) where c is the minimal quorum cardinality.
func LowerBound(sys quorum.System) float64 { return rw.LowerBound(sys) }

// Balance approximately minimizes the maximum element load by playing
// the load game for at most the given number of rounds, and reports how
// converged it is: the returned gap is the width of a certified
// interval around the optimal load (the strategy's own load is within
// gap of optimal), so callers see what the rounds bought instead of
// trusting a blind iteration count. Play stops early once the gap
// reaches rw.DefaultBalanceGap. The exact solver is rw.Optimize; this
// remains the paper-named iterative balancer.
func Balance(sys quorum.System, rounds int) (*Strategy, float64, error) {
	s, gap, err := rw.BalanceLoad(sys, rounds, rw.DefaultBalanceGap)
	if err != nil {
		return nil, 0, err
	}
	return &Strategy{inner: s}, gap, nil
}
