// Package load implements the load measure of Naor & Wool [12] and
// Holzman, Marcus & Peleg [6] — the companion quality measure the paper
// cites alongside availability and probe complexity (§1.2).
//
// A quorum-picking strategy is a probability distribution over the
// quorums; the load it induces on an element is the probability that the
// element's quorum is picked, and the system load is the best achievable
// maximum element load. The package provides exact element loads, the
// uniform strategy, the Naor–Wool lower bound max(1/c, c/n), and an
// iterative balancer (multiplicative-weights play of the associated
// zero-sum game) that approaches the optimal load.
package load

import (
	"fmt"
	"math"

	"probequorum/internal/bitset"
	"probequorum/internal/quorum"
)

// Strategy is a probability distribution over the minimal quorums of a
// system.
type Strategy struct {
	n       int
	quorums []*bitset.Set
	probs   []float64
}

// Quorums returns the support quorums (not copied; do not mutate).
func (s *Strategy) Quorums() []*bitset.Set { return s.quorums }

// Probs returns the probabilities aligned with Quorums (not copied).
func (s *Strategy) Probs() []float64 { return s.probs }

// ElementLoads returns, per element, the probability that a picked quorum
// contains it.
func (s *Strategy) ElementLoads() []float64 {
	loads := make([]float64, s.n)
	for i, q := range s.quorums {
		p := s.probs[i]
		q.ForEach(func(e int) bool {
			loads[e] += p
			return true
		})
	}
	return loads
}

// Load returns the maximum element load induced by the strategy.
func (s *Strategy) Load() float64 {
	max := 0.0
	for _, l := range s.ElementLoads() {
		if l > max {
			max = l
		}
	}
	return max
}

// Uniform returns the strategy that picks each minimal quorum with equal
// probability. Requires explicit quorum enumeration (small systems).
func Uniform(sys quorum.System) *Strategy {
	qs := sys.Quorums()
	probs := make([]float64, len(qs))
	for i := range probs {
		probs[i] = 1 / float64(len(qs))
	}
	return &Strategy{n: sys.Size(), quorums: qs, probs: probs}
}

// LowerBound returns the Naor–Wool bound: every strategy's load is at
// least max(1/c, c/n) where c is the minimal quorum cardinality.
func LowerBound(sys quorum.System) float64 {
	c := float64(quorum.MinQuorumSize(sys))
	n := float64(sys.Size())
	return math.Max(1/c, c/n)
}

// Balance approximately minimizes the maximum element load by playing the
// load game for the given number of rounds: an adversary maintains
// multiplicative weights over elements, the strategy player responds with
// the quorum of least adversary weight, and the empirical distribution of
// responses converges to a near-optimal strategy. More rounds tighten the
// result; a few hundred suffice for the systems in this repository.
func Balance(sys quorum.System, rounds int) (*Strategy, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("load: rounds must be positive, got %d", rounds)
	}
	qs := sys.Quorums()
	if len(qs) == 0 {
		return nil, fmt.Errorf("load: system has no quorums")
	}
	n := sys.Size()
	weights := make([]float64, n)
	for e := range weights {
		weights[e] = 1
	}
	counts := make([]float64, len(qs))
	eta := math.Sqrt(math.Log(float64(n)+1) / float64(rounds))
	for t := 0; t < rounds; t++ {
		// Best response: the quorum with the least total adversary weight.
		best, bestW := 0, math.Inf(1)
		for i, q := range qs {
			w := 0.0
			q.ForEach(func(e int) bool {
				w += weights[e]
				return true
			})
			if w < bestW {
				best, bestW = i, w
			}
		}
		counts[best]++
		// The adversary boosts the elements the chosen quorum loads.
		qs[best].ForEach(func(e int) bool {
			weights[e] *= 1 + eta
			return true
		})
		// Renormalize occasionally to avoid overflow.
		if t%64 == 63 {
			maxW := 0.0
			for _, w := range weights {
				if w > maxW {
					maxW = w
				}
			}
			for e := range weights {
				weights[e] /= maxW
			}
		}
	}
	probs := make([]float64, len(qs))
	for i, c := range counts {
		probs[i] = c / float64(rounds)
	}
	return &Strategy{n: n, quorums: qs, probs: probs}, nil
}
