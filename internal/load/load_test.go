package load

import (
	"math"
	"testing"

	"probequorum/internal/quorum"
	"probequorum/internal/systems"
)

func TestUniformLoadMajority(t *testing.T) {
	// By symmetry the uniform strategy is optimal for Maj, with load
	// c/n = (n+1)/(2n) — it meets the Naor–Wool bound.
	m, _ := systems.NewMaj(5)
	s := Uniform(m)
	want := 3.0 / 5.0
	if got := s.Load(); math.Abs(got-want) > 1e-12 {
		t.Errorf("uniform Maj(5) load = %v, want %v", got, want)
	}
	if lb := LowerBound(m); math.Abs(lb-want) > 1e-12 {
		t.Errorf("lower bound = %v, want %v", lb, want)
	}
	// All element loads equal.
	loads := s.ElementLoads()
	for e, l := range loads {
		if math.Abs(l-want) > 1e-12 {
			t.Errorf("element %d load = %v, want %v", e, l, want)
		}
	}
}

func TestStrategyAccessors(t *testing.T) {
	m, _ := systems.NewMaj(3)
	s := Uniform(m)
	if len(s.Quorums()) != 3 || len(s.Probs()) != 3 {
		t.Errorf("support sizes: %d quorums, %d probs", len(s.Quorums()), len(s.Probs()))
	}
	total := 0.0
	for _, p := range s.Probs() {
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", total)
	}
}

func TestBalanceRespectsLowerBound(t *testing.T) {
	maj, _ := systems.NewMaj(7)
	wheel, _ := systems.NewWheel(6)
	tri, _ := systems.NewTriang(3)
	tree, _ := systems.NewTree(2)
	hqs, _ := systems.NewHQS(2)
	for _, sys := range []quorum.System{maj, wheel, tri, tree, hqs} {
		t.Run(sys.Name(), func(t *testing.T) {
			bal, gap, err := Balance(sys, 800)
			if err != nil {
				t.Fatal(err)
			}
			if gap < 0 {
				t.Errorf("negative certified gap %v", gap)
			}
			balanced := bal.Load()
			// The gap is the balancer's own honesty check: its load can
			// exceed the optimum (hence the lower bound) by at most gap.
			if balanced > LowerBound(sys)+gap+0.25 {
				t.Errorf("balanced load %v not within certified gap %v of plausible optimum", balanced, gap)
			}
			uniform := Uniform(sys).Load()
			lower := LowerBound(sys)
			if balanced < lower-1e-9 {
				t.Errorf("balanced load %v below the Naor–Wool bound %v", balanced, lower)
			}
			// The balancer should not be much worse than uniform, and for
			// asymmetric systems it should improve on it.
			if balanced > uniform+0.05 {
				t.Errorf("balanced load %v worse than uniform %v", balanced, uniform)
			}
		})
	}
}

// The wheel is the showcase: uniform loads the hub with (n-1)/n, while a
// balanced strategy shifts mass to the rim quorum.
func TestBalanceImprovesWheel(t *testing.T) {
	w, _ := systems.NewWheel(8)
	uniform := Uniform(w).Load()
	bal, _, err := Balance(w, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Load() >= uniform-0.1 {
		t.Errorf("balanced %v did not improve on uniform %v", bal.Load(), uniform)
	}
}

func TestBalanceErrors(t *testing.T) {
	m, _ := systems.NewMaj(3)
	if _, _, err := Balance(m, 0); err == nil {
		t.Error("Balance accepted zero rounds")
	}
}
