// Package cluster is the distributed-systems substrate for the examples:
// a simulated cluster of fail-stop processors addressed as quorum-system
// elements. Probing a node is the paper's "probe" operation — it reveals
// whether the processor is live — and the quorum applications the paper
// motivates (replicated data [8], mutual exclusion [1,10]) are built on
// top of witness search.
//
// The simulation is in-process and deterministic: failures are injected
// explicitly or drawn from a seeded PRNG, and node state is guarded by
// mutexes so concurrent clients (goroutines) can contend realistically.
package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"probequorum/internal/bitset"
	"probequorum/internal/coloring"
	"probequorum/internal/probe"
	"probequorum/internal/quorum"
)

// Node is one simulated processor.
type Node struct {
	mu    sync.Mutex
	id    int
	alive bool

	// Replicated-register state.
	version int64
	value   string

	// Mutual-exclusion state: id of the client holding this node's vote,
	// or -1.
	votedFor int64
}

// ID returns the node's element index.
func (n *Node) ID() int { return n.id }

// Alive reports whether the node is currently live.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// Cluster is a set of simulated processors indexed 0..n-1.
type Cluster struct {
	nodes  []*Node
	probes int64
	mu     sync.Mutex // guards probes
}

// New returns a cluster of n live nodes.
func New(n int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: size must be positive, got %d", n))
	}
	c := &Cluster{nodes: make([]*Node, n)}
	for i := range c.nodes {
		c.nodes[i] = &Node{id: i, alive: true, votedFor: -1}
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the node with the given id.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// Crash marks the node as failed. Crashing an already-failed node is a
// no-op.
func (c *Cluster) Crash(id int) {
	n := c.nodes[id]
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = false
}

// Recover brings a failed node back (its register state survives, votes
// are cleared, emulating a restart).
func (c *Cluster) Recover(id int) {
	n := c.nodes[id]
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = true
	n.votedFor = -1
}

// InjectIID crashes each node independently with probability p, after
// reviving all nodes, and returns the resulting failure coloring.
func (c *Cluster) InjectIID(p float64, rng *rand.Rand) *coloring.Coloring {
	col := coloring.IID(len(c.nodes), p, rng)
	c.InjectColoring(col)
	return col
}

// InjectColoring sets every node's liveness from the coloring (red =
// failed).
func (c *Cluster) InjectColoring(col *coloring.Coloring) {
	if col.Size() != len(c.nodes) {
		panic(fmt.Sprintf("cluster: coloring size %d != cluster size %d", col.Size(), len(c.nodes)))
	}
	for i, n := range c.nodes {
		n.mu.Lock()
		n.alive = !col.IsRed(i)
		if !n.alive {
			n.votedFor = -1
		}
		n.mu.Unlock()
	}
}

// Probes returns the total number of probe RPCs served by the cluster.
func (c *Cluster) Probes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.probes
}

// probeRPC simulates a liveness probe RPC against a node.
func (c *Cluster) probeRPC(id int) bool {
	c.mu.Lock()
	c.probes++
	c.mu.Unlock()
	return c.nodes[id].Alive()
}

// Oracle adapts the cluster to the probe.Oracle interface so the paper's
// probing algorithms run unchanged against simulated processors. Each
// client should use its own Oracle (probe accounting is per search).
type Oracle struct {
	c      *Cluster
	probed *bitset.Set
}

var _ probe.Oracle = (*Oracle)(nil)

// NewOracle returns a fresh probe oracle over the cluster.
func (c *Cluster) NewOracle() *Oracle {
	return &Oracle{c: c, probed: bitset.New(len(c.nodes))}
}

// Probe implements probe.Oracle.
func (o *Oracle) Probe(e int) coloring.Color {
	if !o.probed.Contains(e) {
		o.probed.Add(e)
	}
	if o.c.probeRPC(e) {
		return coloring.Green
	}
	return coloring.Red
}

// Probes implements probe.Oracle.
func (o *Oracle) Probes() int { return o.probed.Count() }

// Probed implements probe.Oracle.
func (o *Oracle) Probed() *bitset.Set { return o.probed.Clone() }

// WitnessSearch finds a witness over the cluster using the given probing
// strategy (any of the core algorithms, partially applied).
func (c *Cluster) WitnessSearch(search func(o probe.Oracle) probe.Witness) (probe.Witness, int) {
	o := c.NewOracle()
	w := search(o)
	return w, o.Probes()
}

// ErrNoLiveQuorum is returned by quorum operations when the witness search
// proves that every quorum contains a failed node.
var ErrNoLiveQuorum = errors.New("cluster: no live quorum (red witness found)")

// ErrNodeFailed is returned when a node fails between witness search and
// the operation (the window is empty in this simulation but the error is
// part of the contract).
var ErrNodeFailed = errors.New("cluster: node failed during operation")

// Register is a quorum-replicated single-value register (read/write with
// version numbers, in the style of Gifford/Thomas weighted voting [18]).
type Register struct {
	c      *Cluster
	sys    quorum.System
	search func(o probe.Oracle) probe.Witness
}

// NewRegister returns a replicated register over the cluster, using the
// quorum system (whose universe must match the cluster size) and the given
// witness-search strategy.
func NewRegister(c *Cluster, sys quorum.System, search func(o probe.Oracle) probe.Witness) (*Register, error) {
	if sys.Size() != c.Size() {
		return nil, fmt.Errorf("cluster: system size %d != cluster size %d", sys.Size(), c.Size())
	}
	return &Register{c: c, sys: sys, search: search}, nil
}

// Write stores the value on every node of a live quorum with a version
// larger than any it reads there. It returns the number of liveness probes
// spent, or ErrNoLiveQuorum.
func (r *Register) Write(value string) (int, error) {
	w, probes := r.c.WitnessSearch(r.search)
	if w.Color == coloring.Red {
		return probes, fmt.Errorf("write %q: %w", value, ErrNoLiveQuorum)
	}
	// Read-phase: find the highest version on the quorum.
	var maxVersion int64
	if err := r.forEachQuorumNode(w.Set, func(n *Node) {
		if n.version > maxVersion {
			maxVersion = n.version
		}
	}); err != nil {
		return probes, err
	}
	// Write-phase.
	next := maxVersion + 1
	if err := r.forEachQuorumNode(w.Set, func(n *Node) {
		n.version = next
		n.value = value
	}); err != nil {
		return probes, err
	}
	return probes, nil
}

// Read returns the freshest value on a live quorum together with the
// number of liveness probes spent, or ErrNoLiveQuorum.
func (r *Register) Read() (string, int, error) {
	w, probes := r.c.WitnessSearch(r.search)
	if w.Color == coloring.Red {
		return "", probes, ErrNoLiveQuorum
	}
	var best *Node
	if err := r.forEachQuorumNode(w.Set, func(n *Node) {
		if best == nil || n.version > best.version {
			best = n
		}
	}); err != nil {
		return "", probes, err
	}
	if best == nil {
		return "", probes, ErrNoLiveQuorum
	}
	return best.value, probes, nil
}

// forEachQuorumNode runs fn under each quorum node's lock, failing if any
// node crashed since the witness was produced.
func (r *Register) forEachQuorumNode(set *bitset.Set, fn func(n *Node)) error {
	var failed error
	set.ForEach(func(e int) bool {
		n := r.c.nodes[e]
		n.mu.Lock()
		if !n.alive {
			failed = fmt.Errorf("node %d: %w", e, ErrNodeFailed)
			n.mu.Unlock()
			return false
		}
		fn(n)
		n.mu.Unlock()
		return true
	})
	return failed
}

// Mutex is quorum-based distributed mutual exclusion in the style of
// Maekawa [10] and Agrawal & El-Abbadi [1]: a client enters the critical
// section after collecting votes from every node of a live quorum, and
// intersection of quorums guarantees exclusion.
type Mutex struct {
	c      *Cluster
	sys    quorum.System
	search func(o probe.Oracle) probe.Witness
}

// NewMutex returns a quorum-based mutex over the cluster.
func NewMutex(c *Cluster, sys quorum.System, search func(o probe.Oracle) probe.Witness) (*Mutex, error) {
	if sys.Size() != c.Size() {
		return nil, fmt.Errorf("cluster: system size %d != cluster size %d", sys.Size(), c.Size())
	}
	return &Mutex{c: c, sys: sys, search: search}, nil
}

// ErrContended is returned by TryAcquire when some quorum node has already
// voted for another client.
var ErrContended = errors.New("cluster: quorum node already voted for another client")

// TryAcquire attempts to collect votes from a live quorum for the given
// client. On success it returns the granted quorum (to be passed to
// Release). On contention it releases all partial votes before returning
// ErrContended, so clients can retry without deadlocking.
func (m *Mutex) TryAcquire(clientID int64) (*bitset.Set, int, error) {
	w, probes := m.c.WitnessSearch(m.search)
	if w.Color == coloring.Red {
		return nil, probes, ErrNoLiveQuorum
	}
	var granted []int
	ok := true
	w.Set.ForEach(func(e int) bool {
		n := m.c.nodes[e]
		n.mu.Lock()
		switch {
		case !n.alive:
			ok = false
		case n.votedFor == -1 || n.votedFor == clientID:
			n.votedFor = clientID
			granted = append(granted, e)
		default:
			ok = false
		}
		n.mu.Unlock()
		return ok
	})
	if !ok {
		for _, e := range granted {
			m.release(e, clientID)
		}
		return nil, probes, ErrContended
	}
	return w.Set.Clone(), probes, nil
}

// Release returns the votes of the granted quorum.
func (m *Mutex) Release(clientID int64, granted *bitset.Set) {
	granted.ForEach(func(e int) bool {
		m.release(e, clientID)
		return true
	})
}

func (m *Mutex) release(e int, clientID int64) {
	n := m.c.nodes[e]
	n.mu.Lock()
	if n.votedFor == clientID {
		n.votedFor = -1
	}
	n.mu.Unlock()
}
