package cluster

import (
	"errors"
	"math/rand/v2"
	"testing"

	"probequorum/internal/bitset"
	"probequorum/internal/core"
	"probequorum/internal/probe"
	"probequorum/internal/systems"
)

// TestRegisterFailureSchedule drives the register through a long
// crash/recover/write/read schedule and checks the replication contract
// at every step: a successful read returns the most recently successfully
// written value, and operations fail exactly when the witness search finds
// a red quorum.
func TestRegisterFailureSchedule(t *testing.T) {
	sys, err := systems.NewTriang(4) // rows {0},{1,2},{3,4,5},{6,7,8,9}
	if err != nil {
		t.Fatal(err)
	}
	c := New(sys.Size())
	reg, err := NewRegister(c, sys, func(o probe.Oracle) probe.Witness {
		return core.ProbeCW(sys, o)
	})
	if err != nil {
		t.Fatal(err)
	}

	type step struct {
		op   string // "crash", "recover", "write", "read"
		node int
		val  string
	}
	schedule := []step{
		{op: "write", val: "v1"},
		{op: "crash", node: 0},
		{op: "read"},
		{op: "write", val: "v2"},
		{op: "crash", node: 1},
		{op: "crash", node: 2}, // row 2 fully dead
		{op: "read"},           // still fine: bottom rows carry quorums
		{op: "write", val: "v3"},
		{op: "crash", node: 3},
		{op: "crash", node: 4},
		{op: "crash", node: 5}, // row 3 fully dead: red transversal via rows 2+3? every
		// quorum needs a representative of row 3 or lies fully below it;
		// row 4 remains a quorum on its own.
		{op: "read"},
		{op: "crash", node: 6}, // now row 4 is hit too: no live quorum
		{op: "read"},
		{op: "recover", node: 2},
		{op: "recover", node: 4},
		{op: "recover", node: 6},
		{op: "read"},
		{op: "write", val: "v4"},
		{op: "read"},
	}

	lastWritten := ""
	for i, s := range schedule {
		switch s.op {
		case "crash":
			c.Crash(s.node)
		case "recover":
			c.Recover(s.node)
		case "write":
			if _, err := reg.Write(s.val); err != nil {
				if !errors.Is(err, ErrNoLiveQuorum) {
					t.Fatalf("step %d: write failed unexpectedly: %v", i, err)
				}
			} else {
				lastWritten = s.val
			}
		case "read":
			val, _, err := reg.Read()
			if errors.Is(err, ErrNoLiveQuorum) {
				// Acceptable only if the live set truly contains no quorum.
				if sys.ContainsQuorum(liveSet(c)) {
					t.Fatalf("step %d: read refused although a live quorum exists", i)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: read error: %v", i, err)
			}
			if lastWritten != "" && val != lastWritten {
				t.Fatalf("step %d: read %q, want %q (staleness)", i, val, lastWritten)
			}
		}
	}
}

// liveSet snapshots the cluster's live elements.
func liveSet(c *Cluster) *bitset.Set {
	s := bitset.New(c.Size())
	for i := 0; i < c.Size(); i++ {
		if c.Node(i).Alive() {
			s.Add(i)
		}
	}
	return s
}

// TestMutexRandomizedSchedules stress-tests exclusion across random
// crash/recover storms: whenever two clients both hold the mutex the test
// fails; acquisition failures must coincide with missing live quorums.
func TestMutexRandomizedSchedules(t *testing.T) {
	sys, err := systems.NewTriang(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(13, 17))
	c := New(sys.Size())
	m, err := NewMutex(c, sys, func(o probe.Oracle) probe.Witness {
		return core.ProbeCW(sys, o)
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 300; round++ {
		// Random failure pattern.
		for e := 0; e < sys.Size(); e++ {
			if rng.IntN(3) == 0 {
				c.Crash(e)
			} else {
				c.Recover(e)
			}
		}
		q1, _, err1 := m.TryAcquire(1)
		if err1 == nil {
			if q2, _, err2 := m.TryAcquire(2); err2 == nil {
				t.Fatalf("round %d: both clients acquired (%v and %v)", round, q1, q2)
			}
			m.Release(1, q1)
			continue
		}
		if errors.Is(err1, ErrNoLiveQuorum) {
			if sys.ContainsQuorum(liveSet(c)) {
				t.Fatalf("round %d: refused although a live quorum exists", round)
			}
		}
	}
}
