package cluster

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"

	"probequorum/internal/coloring"
	"probequorum/internal/core"
	"probequorum/internal/probe"
	"probequorum/internal/systems"
)

func newTriangCluster(t *testing.T, k int) (*Cluster, *systems.CW, func(o probe.Oracle) probe.Witness) {
	t.Helper()
	sys, err := systems.NewTriang(k)
	if err != nil {
		t.Fatal(err)
	}
	c := New(sys.Size())
	search := func(o probe.Oracle) probe.Witness { return core.ProbeCW(sys, o) }
	return c, sys, search
}

func TestClusterBasics(t *testing.T) {
	c := New(5)
	if c.Size() != 5 {
		t.Errorf("Size = %d", c.Size())
	}
	if !c.Node(3).Alive() {
		t.Error("fresh node not alive")
	}
	c.Crash(3)
	if c.Node(3).Alive() {
		t.Error("crash not observed")
	}
	c.Recover(3)
	if !c.Node(3).Alive() {
		t.Error("recover not observed")
	}
}

func TestOracleCountsRPCs(t *testing.T) {
	c := New(4)
	c.Crash(2)
	o := c.NewOracle()
	if got := o.Probe(2); got != coloring.Red {
		t.Errorf("Probe(2) = %s, want red", got)
	}
	if got := o.Probe(0); got != coloring.Green {
		t.Errorf("Probe(0) = %s, want green", got)
	}
	o.Probe(2)
	if o.Probes() != 2 {
		t.Errorf("distinct probes = %d, want 2", o.Probes())
	}
	if c.Probes() != 3 {
		t.Errorf("total RPCs = %d, want 3", c.Probes())
	}
	if !o.Probed().Contains(2) {
		t.Error("probed set missing element")
	}
}

func TestInjectColoring(t *testing.T) {
	c := New(6)
	col := coloring.FromReds(6, []int{1, 4})
	c.InjectColoring(col)
	for i := 0; i < 6; i++ {
		if c.Node(i).Alive() == col.IsRed(i) {
			t.Errorf("node %d liveness does not match coloring", i)
		}
	}
	rng := rand.New(rand.NewPCG(1, 2))
	got := c.InjectIID(1.0, rng)
	if got.RedCount() != 6 {
		t.Errorf("InjectIID(1.0) colored %d reds", got.RedCount())
	}
	if c.Node(0).Alive() {
		t.Error("node alive after p=1 injection")
	}
}

func TestRegisterReadWrite(t *testing.T) {
	c, sys, search := newTriangCluster(t, 3)
	reg, err := NewRegister(c, sys, search)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Write("v1"); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, probes, err := reg.Read()
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != "v1" {
		t.Errorf("Read = %q, want v1", got)
	}
	if probes <= 0 || probes > sys.Size() {
		t.Errorf("probes = %d out of range", probes)
	}
}

// Writes survive failures of nodes outside the quorum: intersection
// guarantees a later read sees the latest version.
func TestRegisterFreshnessAcrossFailures(t *testing.T) {
	c, sys, search := newTriangCluster(t, 3) // rows {0},{1,2},{3,4,5}
	reg, err := NewRegister(c, sys, search)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Write("old"); err != nil {
		t.Fatal(err)
	}
	// Crash the top element; quorums through row 2 remain.
	c.Crash(0)
	if _, err := reg.Write("new"); err != nil {
		t.Fatalf("Write after crash: %v", err)
	}
	got, _, err := reg.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != "new" {
		t.Errorf("Read = %q, want new (freshness violated)", got)
	}
}

func TestRegisterNoLiveQuorum(t *testing.T) {
	c, sys, search := newTriangCluster(t, 3)
	reg, err := NewRegister(c, sys, search)
	if err != nil {
		t.Fatal(err)
	}
	// Kill one node in every row: no live quorum remains (the red set
	// {0,1,3} is a transversal).
	for _, id := range []int{0, 1, 3} {
		c.Crash(id)
	}
	// One representative red per row is only a transversal if it hits all
	// quorums; for Triang(3) a quorum needs row 1's single element or a
	// full lower row, both of which are hit.
	if _, err := reg.Write("x"); !errors.Is(err, ErrNoLiveQuorum) {
		t.Errorf("Write err = %v, want ErrNoLiveQuorum", err)
	}
	if _, _, err := reg.Read(); !errors.Is(err, ErrNoLiveQuorum) {
		t.Errorf("Read err = %v, want ErrNoLiveQuorum", err)
	}
}

func TestRegisterSizeMismatch(t *testing.T) {
	c := New(4)
	sys, _ := systems.NewTriang(3)
	if _, err := NewRegister(c, sys, nil); err == nil {
		t.Error("NewRegister accepted a size mismatch")
	}
	if _, err := NewMutex(c, sys, nil); err == nil {
		t.Error("NewMutex accepted a size mismatch")
	}
}

func TestMutexExclusion(t *testing.T) {
	c, sys, search := newTriangCluster(t, 3)
	m, err := NewMutex(c, sys, search)
	if err != nil {
		t.Fatal(err)
	}
	q1, _, err := m.TryAcquire(1)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// A second client must be blocked (every pair of quorums intersects).
	if _, _, err := m.TryAcquire(2); !errors.Is(err, ErrContended) {
		t.Errorf("second acquire err = %v, want ErrContended", err)
	}
	m.Release(1, q1)
	q2, _, err := m.TryAcquire(2)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	m.Release(2, q2)
}

// Concurrent clients never hold the critical section simultaneously.
func TestMutexConcurrentSafety(t *testing.T) {
	c, sys, search := newTriangCluster(t, 4)
	m, err := NewMutex(c, sys, search)
	if err != nil {
		t.Fatal(err)
	}
	var inCS, maxInCS, acquired int64
	var csMu sync.Mutex
	var wg sync.WaitGroup
	for client := int64(1); client <= 8; client++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for attempt := 0; attempt < 200; attempt++ {
				q, _, err := m.TryAcquire(id)
				if err != nil {
					continue
				}
				csMu.Lock()
				inCS++
				if inCS > maxInCS {
					maxInCS = inCS
				}
				acquired++
				inCS--
				csMu.Unlock()
				m.Release(id, q)
			}
		}(client)
	}
	wg.Wait()
	if maxInCS > 1 {
		t.Errorf("mutual exclusion violated: %d clients in CS", maxInCS)
	}
	if acquired == 0 {
		t.Error("no client ever acquired the mutex")
	}
}

func TestMutexNoLiveQuorum(t *testing.T) {
	c, sys, search := newTriangCluster(t, 3)
	m, err := NewMutex(c, sys, search)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 2, 5} { // one per row: a transversal
		c.Crash(id)
	}
	if _, _, err := m.TryAcquire(7); !errors.Is(err, ErrNoLiveQuorum) {
		t.Errorf("TryAcquire err = %v, want ErrNoLiveQuorum", err)
	}
}

// Recovery clears votes so a crashed holder cannot wedge the system.
func TestMutexRecoveryClearsVotes(t *testing.T) {
	c, sys, search := newTriangCluster(t, 3)
	m, err := NewMutex(c, sys, search)
	if err != nil {
		t.Fatal(err)
	}
	q1, _, err := m.TryAcquire(1)
	if err != nil {
		t.Fatal(err)
	}
	// The holder crashes silently; its quorum nodes restart.
	q1.ForEach(func(e int) bool {
		c.Crash(e)
		c.Recover(e)
		return true
	})
	if _, _, err := m.TryAcquire(2); err != nil {
		t.Errorf("acquire after holder restart: %v", err)
	}
}
