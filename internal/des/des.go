// Package des is the deterministic discrete-event simulation engine
// behind the timed measures: probe strategies evaluated against a
// virtual clock, with per-element probe latencies, element state
// evolving mid-evaluation (churn), and issue disciplines that keep
// several probes in flight.
//
// Everything is seeded — there is no wall clock anywhere, so the
// package is detrand-clean by construction: a trial's event sequence,
// probe order and outcome are pure functions of (system, scenario,
// p, seed, trial index), and the parallel runner aggregates trial
// outcomes by trial index, so summaries are bit-identical at any worker
// count.
//
// The paper's probe strategies become *schedulers* here: a strategy is
// replayed against the colors observed so far (speculating green for
// probes still in flight) to decide the next element to issue, which
// turns every deterministic and randomized strategy of the static
// engine into a policy for the temporal one without reimplementing any
// of them. With zero latency, zero churn and the sequential discipline
// a timed trial issues exactly the probe sequence of the static engine
// — the differential the façade tests pin.
package des

import "fmt"

// ScenarioError is the typed error of scenario parsing and validation:
// a malformed latency or churn spec, a bad discipline parameter, or a
// strategy the system cannot provide. The façade wraps it into its own
// typed query errors.
type ScenarioError struct {
	Msg string
}

// Error implements error.
func (e *ScenarioError) Error() string { return "des: " + e.Msg }

func scenErrf(format string, args ...any) error {
	return &ScenarioError{Msg: fmt.Sprintf(format, args...)}
}

// Options selects a temporal scenario by wire-friendly values: the
// latency and churn plan grammars (see ParseLatency and ParseChurn),
// the issue discipline, and the reach deadline. It is the exact shape a
// Query carries across the wire.
type Options struct {
	// Latency is the probe latency spec ("" meaning const:0 — probes
	// return instantly).
	Latency string
	// Churn is the churn plan spec ("" meaning none — element states
	// are frozen at the initial coloring).
	Churn string
	// Window is the issue discipline's in-flight cap: 0 or 1 is the
	// sequential discipline, k > 1 keeps up to k probes outstanding
	// (window-k).
	Window int
	// HedgeMS, when positive, arms a hedge timer on every issued probe:
	// a probe still outstanding after HedgeMS virtual milliseconds
	// triggers one additional speculative issue (hedged-after-deadline).
	HedgeMS float64
	// DeadlineMS, when positive, is the reach deadline in virtual
	// milliseconds: the reach measure is the fraction of trials whose
	// time to quorum is at most this.
	DeadlineMS float64
	// Randomized selects the system's randomized worst-case strategy
	// (RandomizedProber) instead of the deterministic one.
	Randomized bool
}

// Scenario is a compiled temporal scenario: parsed latency and churn
// models plus the validated discipline parameters. Compile once and
// share freely — a Scenario is immutable and safe for concurrent use;
// the façade memoizes compiled scenarios per session by Key.
type Scenario struct {
	latency Latency
	churn   Churn
	window  int
	hedgeMS float64

	deadlineMS float64
	randomized bool
	key        string
}

// Compile parses and validates a scenario.
func Compile(o Options) (*Scenario, error) {
	lat, err := ParseLatency(o.Latency)
	if err != nil {
		return nil, err
	}
	ch, err := ParseChurn(o.Churn)
	if err != nil {
		return nil, err
	}
	if o.Window < 0 {
		return nil, scenErrf("negative window %d", o.Window)
	}
	if o.HedgeMS < 0 || o.HedgeMS != o.HedgeMS {
		return nil, scenErrf("bad hedge delay %v; want a nonnegative duration in virtual ms", o.HedgeMS)
	}
	if o.DeadlineMS < 0 || o.DeadlineMS != o.DeadlineMS {
		return nil, scenErrf("bad reach deadline %v; want a nonnegative duration in virtual ms", o.DeadlineMS)
	}
	window := o.Window
	if window < 1 {
		window = 1
	}
	return &Scenario{
		latency:    lat,
		churn:      ch,
		window:     window,
		hedgeMS:    o.HedgeMS,
		deadlineMS: o.DeadlineMS,
		randomized: o.Randomized,
		key: fmt.Sprintf("lat=%s|churn=%s|w=%d|hedge=%g|deadline=%g|rand=%t",
			lat.String(), ch.String(), window, o.HedgeMS, o.DeadlineMS, o.Randomized),
	}, nil
}

// Key returns the canonical memoization key of the compiled scenario:
// two Options compiling to the same models and parameters share it.
func (s *Scenario) Key() string { return s.key }

// DeadlineMS returns the scenario's reach deadline (0 when none).
func (s *Scenario) DeadlineMS() float64 { return s.deadlineMS }

// Randomized reports whether the scenario schedules with the system's
// randomized strategy.
func (s *Scenario) Randomized() bool { return s.randomized }
