package des

import (
	"math/rand/v2"

	"probequorum/internal/bitset"
	"probequorum/internal/coloring"
)

// outcome is the record of one timed trial.
type outcome struct {
	// ttqMS is the virtual time at which the replay first terminated on
	// observed colors alone.
	ttqMS float64
	// issued counts probes issued by the temporal engine.
	issued int
	// static counts probes of the static engine on the same initial
	// coloring — the baseline the probes-issued measure is read against.
	static int
	// inflightAvg is the time average of probes in flight over [0, ttq]
	// (0 for an instant trial).
	inflightAvg float64
	// inflightMax is the peak number of probes simultaneously in flight.
	inflightMax int
	// events counts processed virtual events.
	events int
	// reached reports ttqMS <= deadline (always true without one).
	reached bool
}

// trialState is the reusable per-worker simulation state: one
// allocation pool per worker, reset per trial, so the steady-state
// trial loop does not allocate.
type trialState struct {
	sched *Scheduler
	sc    *Scenario
	n     int

	col      *coloring.Coloring // initial coloring of the trial
	oracle   *replayOracle
	inflight *bitset.Set
	queue    *eventQueue

	latG prng
	ct   churnTrial

	// stratSrc/stratRNG is the randomized-strategy stream, re-seeded
	// identically before every replay of a trial so replays retrace each
	// other. Nil-wrapped only once; deterministic strategies ignore it.
	stratSrc *rand.PCG
	stratRNG *rand.Rand

	// issueOrder, when non-nil, records elements in issue order — the
	// hook the zero-latency differential tests pin against the static
	// engine's probe order.
	issueOrder []int
}

func newTrialState(sched *Scheduler, sc *Scenario) *trialState {
	n := sched.n
	src := &rand.PCG{}
	return &trialState{
		sched:    sched,
		sc:       sc,
		n:        n,
		col:      coloring.New(n),
		oracle:   newReplayOracle(n),
		inflight: bitset.New(n),
		queue:    newEventQueue(2 * n),
		stratSrc: src,
		stratRNG: rand.New(src),
	}
}

// seedStrategy repositions the randomized-strategy stream at the start
// of trial's stream; called before every replay so each retraces the
// last.
func (ts *trialState) seedStrategy(seed uint64, trial int) {
	if ts.sched.randomized {
		ts.stratSrc.Seed(seed^saltStrategy, uint64(trial)+1)
	}
}

// runTrial simulates one timed trial. The initial coloring is drawn
// from the unsalted (seed, trial) stream — exactly the static engine's
// draw — unless fixed is non-nil, in which case that coloring is used
// (the exhaustive differential's entry point).
func (ts *trialState) runTrial(p float64, seed uint64, trial int, fixed *coloring.Coloring) outcome {
	sc := ts.sc
	if fixed != nil {
		for e := 0; e < ts.n; e++ {
			ts.col.SetColor(e, fixed.Of(e))
		}
	} else {
		rng := rand.New(rand.NewPCG(seed, uint64(trial)+1))
		coloring.IIDInto(ts.col, p, rng)
	}

	// Static baseline: the untimed strategy on the same initial coloring.
	ts.seedStrategy(seed, trial)
	static := ts.staticProbes()

	ts.latG.seed(seed^saltLatency, uint64(trial)+1)
	ts.ct.reset(&sc.churn, seed, trial)
	ts.oracle.resetTrial()
	ts.inflight.Clear()
	ts.queue.reset()
	ts.issueOrder = ts.issueOrder[:0]

	out := outcome{static: static}
	var (
		now       float64
		lastT     float64
		integral  float64
		inflightN int
		done      bool
	)

	issue := func(e int) {
		ts.inflight.Add(e)
		inflightN++
		if inflightN > out.inflightMax {
			out.inflightMax = inflightN
		}
		out.issued++
		ts.issueOrder = append(ts.issueOrder, e)
		ts.queue.push(now+sc.latency.sample(e, &ts.latG), evArrival, e)
		if sc.hedgeMS > 0 {
			ts.queue.push(now+sc.hedgeMS, evHedge, e)
		}
	}

	// topUp replays the strategy until the window is full or it stops
	// asking for new elements. Returns true when the trial completed on
	// observed colors alone. At least one replay always runs, so
	// completion is detected even when hedges have overfilled the window.
	topUp := func() bool {
		for {
			ts.seedStrategy(seed, trial)
			res := ts.sched.step(ts.oracle, ts.inflight, ts.stratRNG)
			if res.terminated {
				return !res.speculated
			}
			if inflightN >= sc.window {
				return false
			}
			issue(res.next)
		}
	}

	done = topUp()
	for !done && ts.queue.len() > 0 {
		ev := ts.queue.pop()
		now = ev.at
		integral += float64(inflightN) * (now - lastT)
		lastT = now
		out.events++
		switch ev.kind {
		case evArrival:
			e := ev.elem
			base := ts.col.Of(e)
			c := base
			if sc.churn.active() {
				c = sc.churn.colorAt(&ts.ct, e, now, base)
			}
			ts.oracle.known[e] = c
			ts.inflight.Remove(e)
			inflightN--
			done = topUp()
		case evHedge:
			// The watched probe already arrived: the timer is stale.
			if ts.oracle.known[ev.elem] != 0 {
				continue
			}
			ts.seedStrategy(seed, trial)
			res := ts.sched.step(ts.oracle, ts.inflight, ts.stratRNG)
			if res.terminated {
				done = !res.speculated
			} else {
				issue(res.next)
			}
		}
	}

	out.ttqMS = now
	if now > 0 {
		out.inflightAvg = integral / now
	}
	out.reached = sc.deadlineMS <= 0 || out.ttqMS <= sc.deadlineMS
	return out
}

// staticProbes runs the untimed strategy against the trial's initial
// coloring and returns its distinct probe count.
func (ts *trialState) staticProbes() int {
	o := ts.oracle
	o.resetTrial()
	// With every color answerable from the coloring, the replay cannot
	// abort: fill known from the initial coloring.
	for e := 0; e < ts.n; e++ {
		o.known[e] = ts.col.Of(e)
	}
	ts.sched.run(o, ts.stratRNG)
	n := o.count
	o.resetTrial()
	return n
}
