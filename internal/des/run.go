package des

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"probequorum/internal/coloring"
	"probequorum/internal/quorum"
	"probequorum/internal/stats"
)

// trialChunk is the unit of work claiming: workers grab chunks of trial
// indices atomically, but every outcome lands in its trial's slot, so
// aggregation order — and the summaries — never depend on worker count.
const trialChunk = 64

// Params configures a timed run.
type Params struct {
	// Sys is the system whose probe strategy is scheduled.
	Sys quorum.System
	// Scenario is the compiled temporal scenario.
	Scenario *Scenario
	// P is the independent per-element failure probability of the
	// initial coloring.
	P float64
	// Trials is the Monte Carlo trial count.
	Trials int
	// Seed seeds every per-trial stream.
	Seed uint64
	// Workers caps the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Dist summarizes one per-trial distribution in virtual milliseconds.
type Dist struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Result is the aggregate of a timed run. Bit-identical for a given
// (system, scenario, p, seed, trials) at any worker count.
type Result struct {
	// Trials is the number of simulated trials.
	Trials int
	// TTQ is the time-to-quorum distribution.
	TTQ Dist
	// InFlightMean is the mean over trials of the time-averaged number
	// of probes in flight.
	InFlightMean float64
	// InFlightMax is the peak number of probes simultaneously in flight
	// in any trial.
	InFlightMax int
	// IssuedMean is the mean number of probes issued per trial,
	// including speculative probes whose results went unused.
	IssuedMean float64
	// StaticMean is the mean probe count of the untimed strategy on the
	// same initial colorings — the baseline IssuedMean is read against.
	StaticMean float64
	// Reach is the fraction of trials whose time to quorum met the
	// scenario deadline (1 when the scenario has none).
	Reach float64
	// Events is the total number of virtual events processed.
	Events int
}

// RunCtx simulates p.Trials timed trials and aggregates them. It stops
// early with ctx's error when the context is canceled mid-run.
func RunCtx(ctx context.Context, p Params) (Result, error) {
	if p.Sys == nil {
		return Result{}, scenErrf("nil system")
	}
	if p.Scenario == nil {
		return Result{}, scenErrf("nil scenario")
	}
	if p.Trials <= 0 {
		return Result{}, scenErrf("bad trial count %d", p.Trials)
	}
	if !(p.P >= 0 && p.P <= 1) {
		return Result{}, scenErrf("bad failure probability %v", p.P)
	}
	sched, err := NewScheduler(p.Sys, p.Scenario.randomized)
	if err != nil {
		return Result{}, err
	}

	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := (p.Trials + trialChunk - 1) / trialChunk
	if workers > chunks {
		workers = chunks
	}

	outcomes := make([]outcome, p.Trials)
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, fmt.Sprintf("des: trial worker panicked: %v", r))
				}
			}()
			ts := newTrialState(sched, p.Scenario)
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				if ctx.Err() != nil {
					return
				}
				lo, hi := c*trialChunk, (c+1)*trialChunk
				if hi > p.Trials {
					hi = p.Trials
				}
				for i := lo; i < hi; i++ {
					outcomes[i] = ts.runTrial(p.P, p.Seed, i, nil)
				}
			}
		}()
	}
	wg.Wait()
	if msg := panicked.Load(); msg != nil {
		return Result{}, scenErrf("%s", msg)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return aggregate(outcomes), nil
}

// aggregate folds per-trial outcomes, in trial order, into a Result.
func aggregate(outcomes []outcome) Result {
	res := Result{Trials: len(outcomes)}
	ttqs := make([]float64, len(outcomes))
	var reached int
	for i := range outcomes {
		o := &outcomes[i]
		ttqs[i] = o.ttqMS
		res.TTQ.MeanMS += o.ttqMS
		res.InFlightMean += o.inflightAvg
		res.IssuedMean += float64(o.issued)
		res.StaticMean += float64(o.static)
		res.Events += o.events
		if o.inflightMax > res.InFlightMax {
			res.InFlightMax = o.inflightMax
		}
		if o.reached {
			reached++
		}
	}
	n := float64(len(outcomes))
	res.TTQ.MeanMS /= n
	res.InFlightMean /= n
	res.IssuedMean /= n
	res.StaticMean /= n
	res.Reach = float64(reached) / n
	sort.Float64s(ttqs)
	res.TTQ.P50MS = stats.SortedQuantile(ttqs, 0.50)
	res.TTQ.P99MS = stats.SortedQuantile(ttqs, 0.99)
	res.TTQ.MaxMS = ttqs[len(ttqs)-1]
	return res
}

// IssueOrder simulates one timed trial and returns the elements in
// issue order, drawing the initial coloring from the unsalted
// (seed, trial) stream exactly as the static engine does. It is the
// differential test hook: with zero latency, zero churn and the
// sequential discipline the returned order equals the static strategy's
// probe order.
func IssueOrder(sys quorum.System, sc *Scenario, p float64, seed uint64, trial int) ([]int, error) {
	return issueOrder(sys, sc, p, seed, trial, nil)
}

// IssueOrderFor is IssueOrder against a fixed initial coloring instead
// of an IID draw — the exhaustive differential's entry point.
func IssueOrderFor(sys quorum.System, sc *Scenario, col *coloring.Coloring, seed uint64, trial int) ([]int, error) {
	if col == nil {
		return nil, scenErrf("nil coloring")
	}
	return issueOrder(sys, sc, 0, seed, trial, col)
}

func issueOrder(sys quorum.System, sc *Scenario, p float64, seed uint64, trial int, col *coloring.Coloring) ([]int, error) {
	if sys == nil {
		return nil, scenErrf("nil system")
	}
	if sc == nil {
		return nil, scenErrf("nil scenario")
	}
	sched, err := NewScheduler(sys, sc.randomized)
	if err != nil {
		return nil, err
	}
	ts := newTrialState(sched, sc)
	ts.runTrial(p, seed, trial, col)
	out := make([]int, len(ts.issueOrder))
	copy(out, ts.issueOrder)
	return out, nil
}
