package des

import (
	"context"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"probequorum/internal/coloring"
	"probequorum/internal/probe"
	"probequorum/internal/quorum"
	"probequorum/internal/systems"
)

// smallSystems returns one instance of every construction small enough
// for exhaustive coloring enumeration.
func smallSystems(t *testing.T) []quorum.System {
	t.Helper()
	var out []quorum.System
	add := func(sys quorum.System, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("building system: %v", err)
		}
		if sys.Size() > 14 {
			t.Fatalf("system %s too large for exhaustive differential: n=%d", sys.Name(), sys.Size())
		}
		out = append(out, sys)
	}
	add(systems.NewMaj(5))
	add(systems.NewWheel(6))
	add(systems.NewCW([]int{1, 3, 5}))
	add(systems.NewTriang(3))
	add(systems.NewTree(2))
	add(systems.NewHQS(2))
	add(systems.NewVote([]int{3, 1, 1, 1, 1}))
	add(systems.NewRecMaj(3, 2))
	return out
}

func mustCompile(t *testing.T, o Options) *Scenario {
	t.Helper()
	sc, err := Compile(o)
	if err != nil {
		t.Fatalf("Compile(%+v): %v", o, err)
	}
	return sc
}

func TestEventQueueOrder(t *testing.T) {
	q := newEventQueue(4)
	q.push(3.0, evArrival, 0)
	q.push(1.0, evArrival, 1)
	q.push(2.0, evHedge, 2)
	q.push(1.0, evHedge, 3) // same time as elem 1: FIFO by issue order
	q.push(0.5, evArrival, 4)
	wantElems := []int{4, 1, 3, 2, 0}
	for i, want := range wantElems {
		if q.len() == 0 {
			t.Fatalf("queue empty after %d pops, want %d events", i, len(wantElems))
		}
		if got := q.pop(); got.elem != want {
			t.Fatalf("pop %d: got elem %d, want %d", i, got.elem, want)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after draining: %d left", q.len())
	}
}

func TestLatencyParse(t *testing.T) {
	for _, spec := range []string{"", "const:5", "uniform:1,9", "exp:2.5", "lognorm:1,0.5", "exp:3+zone:4,10"} {
		l, err := ParseLatency(spec)
		if err != nil {
			t.Fatalf("ParseLatency(%q): %v", spec, err)
		}
		// Canonical form re-parses to itself.
		l2, err := ParseLatency(l.String())
		if err != nil || l2.String() != l.String() {
			t.Fatalf("ParseLatency(%q) not canonical: %q, err=%v", spec, l2.String(), err)
		}
	}
	for _, spec := range []string{"const", "const:x", "uniform:9,1", "exp:-1", "warp:3", "exp:1+zone:0,5", "exp:1+shard:2,5"} {
		if _, err := ParseLatency(spec); err == nil {
			t.Fatalf("ParseLatency(%q): want error", spec)
		} else if _, ok := err.(*ScenarioError); !ok {
			t.Fatalf("ParseLatency(%q): error %T, want *ScenarioError", spec, err)
		}
	}
}

func TestLatencySample(t *testing.T) {
	l, err := ParseLatency("uniform:2,6+zone:3,100")
	if err != nil {
		t.Fatal(err)
	}
	var g1, g2 prng
	g1.seed(1, 2)
	g2.seed(1, 2)
	for e := 0; e < 9; e++ {
		a, b := l.sample(e, &g1), l.sample(e, &g2)
		if a != b {
			t.Fatalf("sample not deterministic for element %d: %v != %v", e, a, b)
		}
		base := a - float64(e%3)*100
		if base < 2 || base > 6 {
			t.Fatalf("element %d: base draw %v outside [2, 6]", e, base)
		}
	}
}

func TestChurnParse(t *testing.T) {
	for _, spec := range []string{"", "none", "flap:10,5", "zoneout:3,50,25", "script:down@10=0-4;up@20=2-2"} {
		c, err := ParseChurn(spec)
		if err != nil {
			t.Fatalf("ParseChurn(%q): %v", spec, err)
		}
		c2, err := ParseChurn(c.String())
		if err != nil || c2.String() != c.String() {
			t.Fatalf("ParseChurn(%q) not canonical: %q, err=%v", spec, c2.String(), err)
		}
	}
	for _, spec := range []string{"flap:0,5", "flap:5", "zoneout:0,1,1", "script:", "script:sideways@3=0-1", "script:down@-1=0-1", "script:down@1=4-2", "quake:1"} {
		if _, err := ParseChurn(spec); err == nil {
			t.Fatalf("ParseChurn(%q): want error", spec)
		}
	}
}

func TestChurnColorAt(t *testing.T) {
	t.Run("script", func(t *testing.T) {
		c, err := ParseChurn("script:down@10=0-4;up@20=2-2")
		if err != nil {
			t.Fatal(err)
		}
		var ct churnTrial
		ct.reset(&c, 1, 0)
		cases := []struct {
			e    int
			at   float64
			want coloring.Color
		}{
			{0, 5, coloring.Green}, // before the outage
			{0, 10, coloring.Red},  // down from t=10
			{0, 25, coloring.Red},  // stays down
			{2, 15, coloring.Red},  // in the outage range
			{2, 20, coloring.Green},
			{5, 15, coloring.Green}, // outside the range
		}
		for _, tc := range cases {
			if got := c.colorAt(&ct, tc.e, tc.at, coloring.Green); got != tc.want {
				t.Fatalf("colorAt(e=%d, t=%v) = %s, want %s", tc.e, tc.at, got, tc.want)
			}
		}
	})
	t.Run("zoneout", func(t *testing.T) {
		c, err := ParseChurn("zoneout:3,50,25")
		if err != nil {
			t.Fatal(err)
		}
		var ct churnTrial
		ct.reset(&c, 7, 3)
		if ct.zone < 0 || ct.zone >= 3 {
			t.Fatalf("drawn zone %d outside [0, 3)", ct.zone)
		}
		var ct2 churnTrial
		ct2.reset(&c, 7, 3)
		if ct2.zone != ct.zone {
			t.Fatalf("zone draw not deterministic: %d != %d", ct2.zone, ct.zone)
		}
		for e := 0; e < 9; e++ {
			inZone := e%3 == ct.zone
			if got := c.colorAt(&ct, e, 60, coloring.Green); (got == coloring.Red) != inZone {
				t.Fatalf("element %d at t=60: %s, inZone=%t", e, got, inZone)
			}
			if got := c.colorAt(&ct, e, 80, coloring.Green); got != coloring.Green {
				t.Fatalf("element %d after the window: %s, want green", e, got)
			}
		}
	})
	t.Run("flap", func(t *testing.T) {
		c, err := ParseChurn("flap:10,5")
		if err != nil {
			t.Fatal(err)
		}
		var ct churnTrial
		ct.reset(&c, 11, 2)
		// The walk is a pure function of (seed, trial, e, t): repeated and
		// out-of-order queries agree.
		first := make([]coloring.Color, 40)
		for i := range first {
			first[i] = c.colorAt(&ct, 3, float64(i), coloring.Green)
		}
		for i := len(first) - 1; i >= 0; i-- {
			if got := c.colorAt(&ct, 3, float64(i), coloring.Green); got != first[i] {
				t.Fatalf("flap walk not reproducible at t=%d: %s != %s", i, got, first[i])
			}
		}
		if c.colorAt(&ct, 3, 0, coloring.Red) != coloring.Red {
			t.Fatal("flap walk must start from the base color at t=0")
		}
	})
}

func TestCompileValidation(t *testing.T) {
	for _, o := range []Options{
		{Latency: "warp:1"},
		{Churn: "quake:1"},
		{Window: -1},
		{HedgeMS: -1},
		{HedgeMS: math.NaN()},
		{DeadlineMS: -1},
	} {
		if _, err := Compile(o); err == nil {
			t.Fatalf("Compile(%+v): want error", o)
		} else if _, ok := err.(*ScenarioError); !ok {
			t.Fatalf("Compile(%+v): error %T, want *ScenarioError", o, err)
		}
	}
	a := mustCompile(t, Options{Latency: "exp:3", Window: 0})
	b := mustCompile(t, Options{Latency: "exp:3", Window: 1})
	if a.Key() != b.Key() {
		t.Fatalf("window 0 and 1 are both sequential but key %q != %q", a.Key(), b.Key())
	}
}

// staticOrder runs the untimed strategy against col and returns its
// probe order, with the same rng derivation the scheduler uses.
func staticOrder(t *testing.T, sys quorum.System, col *coloring.Coloring, randomized bool, seed uint64, trial int) []int {
	t.Helper()
	o := probe.NewOracle(col)
	if randomized {
		rp, ok := sys.(probe.RandomizedProber)
		if !ok {
			t.Fatalf("system %s is not a RandomizedProber", sys.Name())
		}
		rng := rand.New(rand.NewPCG(seed^saltStrategy, uint64(trial)+1))
		rp.ProbeWitnessRandomized(o, rng)
	} else {
		pr, ok := sys.(probe.Prober)
		if !ok {
			t.Fatalf("system %s is not a Prober", sys.Name())
		}
		pr.ProbeWitness(o)
	}
	return o.Order()
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestZeroLatencyDifferentialExhaustive is the tentpole contract: with
// zero latency, zero churn and the sequential discipline, the timed
// engine issues exactly the static strategy's probe sequence — for
// every construction, every coloring, both strategy families.
func TestZeroLatencyDifferentialExhaustive(t *testing.T) {
	for _, randomized := range []bool{false, true} {
		sc := mustCompile(t, Options{Randomized: randomized})
		for _, sys := range smallSystems(t) {
			n := sys.Size()
			trial := 0
			coloring.All(n, func(col *coloring.Coloring) bool {
				want := staticOrder(t, sys, col, randomized, 42, trial)
				got, err := IssueOrderFor(sys, sc, col, 42, trial)
				if err != nil {
					t.Fatalf("%s randomized=%t: IssueOrderFor: %v", sys.Name(), randomized, err)
				}
				if !equalInts(got, want) {
					t.Fatalf("%s randomized=%t coloring %v: timed order %v != static order %v",
						sys.Name(), randomized, col, got, want)
				}
				trial++
				return true
			})
		}
	}
}

// TestZeroLatencyDifferentialWide is the same contract on a wide
// universe with IID colorings from the static engine's stream.
func TestZeroLatencyDifferentialWide(t *testing.T) {
	sys, err := systems.NewMaj(1025)
	if err != nil {
		t.Fatal(err)
	}
	for _, randomized := range []bool{false, true} {
		sc := mustCompile(t, Options{Randomized: randomized})
		for trial := 0; trial < 5; trial++ {
			col := coloring.New(1025)
			rng := rand.New(rand.NewPCG(99, uint64(trial)+1))
			coloring.IIDInto(col, 0.3, rng)
			want := staticOrder(t, sys, col, randomized, 99, trial)
			got, err := IssueOrder(sys, sc, 0.3, 99, trial)
			if err != nil {
				t.Fatalf("randomized=%t trial %d: %v", randomized, trial, err)
			}
			if !equalInts(got, want) {
				t.Fatalf("randomized=%t trial %d: timed order (%d probes) != static order (%d probes)",
					randomized, trial, len(got), len(want))
			}
		}
	}
}

// TestConstLatencySequentialExact pins the simplest closed form: with
// const:5 latency, no churn and the sequential discipline, each trial's
// time to quorum is exactly 5 ms per static probe.
func TestConstLatencySequentialExact(t *testing.T) {
	sys, err := systems.NewMaj(11)
	if err != nil {
		t.Fatal(err)
	}
	sc := mustCompile(t, Options{Latency: "const:5"})
	res, err := RunCtx(context.Background(), Params{Sys: sys, Scenario: sc, P: 0.3, Trials: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.IssuedMean != res.StaticMean {
		t.Fatalf("sequential discipline issued %v probes/trial, static %v", res.IssuedMean, res.StaticMean)
	}
	if got, want := res.TTQ.MeanMS, 5*res.StaticMean; math.Abs(got-want) > 1e-9 {
		t.Fatalf("TTQ mean %v ms, want exactly 5*static = %v", got, want)
	}
	if res.InFlightMax != 1 {
		t.Fatalf("sequential discipline peaked at %d in flight, want 1", res.InFlightMax)
	}
	if res.Reach != 1 {
		t.Fatalf("reach %v without a deadline, want 1", res.Reach)
	}
	if !(res.TTQ.P50MS <= res.TTQ.P99MS && res.TTQ.P99MS <= res.TTQ.MaxMS) {
		t.Fatalf("quantiles out of order: %+v", res.TTQ)
	}
}

// TestSeedDeterminismMatrix is the satellite contract: identical
// (seed, scenario, scheduler) yields bit-identical results at
// parallelism 1, 4 and GOMAXPROCS — including under latency spread,
// churn, windowed issue and hedging.
func TestSeedDeterminismMatrix(t *testing.T) {
	sys, err := systems.NewMaj(101)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []Options{
		{Latency: "exp:4"},
		{Latency: "uniform:1,9+zone:3,5", Window: 4, Churn: "flap:40,10"},
		{Latency: "lognorm:1,0.7", HedgeMS: 3, Churn: "zoneout:4,10,30", DeadlineMS: 60},
		{Latency: "exp:4", Window: 3, Randomized: true},
	}
	for _, o := range scenarios {
		sc := mustCompile(t, o)
		var base Result
		for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			res, err := RunCtx(context.Background(), Params{
				Sys: sys, Scenario: sc, P: 0.25, Trials: 300, Seed: 13, Workers: workers,
			})
			if err != nil {
				t.Fatalf("scenario %s workers=%d: %v", sc.Key(), workers, err)
			}
			if i == 0 {
				base = res
			} else if res != base {
				t.Fatalf("scenario %s: workers=%d result differs from workers=1:\n%+v\n%+v",
					sc.Key(), workers, res, base)
			}
		}
		if base.TTQ.MeanMS <= 0 {
			t.Fatalf("scenario %s: degenerate TTQ %+v", sc.Key(), base.TTQ)
		}
	}
}

// TestWindowAndHedge checks the discipline mechanics: window-k bounds
// the in-flight peak, and hedging may push past it.
func TestWindowAndHedge(t *testing.T) {
	sys, err := systems.NewMaj(101)
	if err != nil {
		t.Fatal(err)
	}
	seq := mustCompile(t, Options{Latency: "exp:10"})
	win := mustCompile(t, Options{Latency: "exp:10", Window: 4})
	hedge := mustCompile(t, Options{Latency: "exp:10", Window: 4, HedgeMS: 1})
	run := func(sc *Scenario) Result {
		t.Helper()
		res, err := RunCtx(context.Background(), Params{Sys: sys, Scenario: sc, P: 0.2, Trials: 200, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rSeq, rWin, rHedge := run(seq), run(win), run(hedge)
	if rSeq.InFlightMax != 1 {
		t.Fatalf("sequential peak in flight %d, want 1", rSeq.InFlightMax)
	}
	if rWin.InFlightMax < 2 || rWin.InFlightMax > 4 {
		t.Fatalf("window-4 peak in flight %d, want in [2, 4]", rWin.InFlightMax)
	}
	if rHedge.InFlightMax <= 4 {
		t.Fatalf("hedged peak in flight %d, want above the window", rHedge.InFlightMax)
	}
	if !(rWin.TTQ.MeanMS < rSeq.TTQ.MeanMS) {
		t.Fatalf("window-4 TTQ %v not below sequential %v", rWin.TTQ.MeanMS, rSeq.TTQ.MeanMS)
	}
	if !(rWin.IssuedMean >= rWin.StaticMean) {
		t.Fatalf("window-4 issued %v below static %v", rWin.IssuedMean, rWin.StaticMean)
	}
}

// TestDeadlineReach checks the reach measure against the TTQ
// distribution it is defined by.
func TestDeadlineReach(t *testing.T) {
	sys, err := systems.NewMaj(31)
	if err != nil {
		t.Fatal(err)
	}
	tight := mustCompile(t, Options{Latency: "const:5", DeadlineMS: 1})
	loose := mustCompile(t, Options{Latency: "const:5", DeadlineMS: 1e6})
	rt, err := RunCtx(context.Background(), Params{Sys: sys, Scenario: tight, P: 0.2, Trials: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := RunCtx(context.Background(), Params{Sys: sys, Scenario: loose, P: 0.2, Trials: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Reach != 0 {
		t.Fatalf("1 ms deadline with 5 ms probes: reach %v, want 0", rt.Reach)
	}
	if rl.Reach != 1 {
		t.Fatalf("huge deadline: reach %v, want 1", rl.Reach)
	}
}

// TestChurnExtendsTTQ checks that a zone outage forces extra probing:
// with every probe 1 ms and sequential issue, TTQ is exactly the probe
// count, and killing half the universe mid-trial pushes it above the
// churn-free baseline (the strategy must wade through mixed colors to
// assemble either witness).
func TestChurnExtendsTTQ(t *testing.T) {
	sys, err := systems.NewMaj(31)
	if err != nil {
		t.Fatal(err)
	}
	none := mustCompile(t, Options{Latency: "const:1"})
	outage := mustCompile(t, Options{Latency: "const:1", Churn: "zoneout:2,0,100000"})
	rNone, err := RunCtx(context.Background(), Params{Sys: sys, Scenario: none, P: 0, Trials: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := RunCtx(context.Background(), Params{Sys: sys, Scenario: outage, P: 0, Trials: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rNone.TTQ.MeanMS != 16 {
		t.Fatalf("churn-free all-green majority: TTQ mean %v ms, want 16", rNone.TTQ.MeanMS)
	}
	if !(rOut.TTQ.MeanMS > rNone.TTQ.MeanMS) {
		t.Fatalf("zone outage TTQ %v ms not above churn-free %v ms", rOut.TTQ.MeanMS, rNone.TTQ.MeanMS)
	}
}

func TestRunCtxCancellation(t *testing.T) {
	sys, err := systems.NewMaj(1025)
	if err != nil {
		t.Fatal(err)
	}
	sc := mustCompile(t, Options{Latency: "exp:2"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, Params{Sys: sys, Scenario: sc, P: 0.3, Trials: 10000, Seed: 1}); err != context.Canceled {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
}

func TestRunCtxValidation(t *testing.T) {
	sys, err := systems.NewMaj(5)
	if err != nil {
		t.Fatal(err)
	}
	sc := mustCompile(t, Options{})
	for _, p := range []Params{
		{Scenario: sc, P: 0.5, Trials: 10},
		{Sys: sys, P: 0.5, Trials: 10},
		{Sys: sys, Scenario: sc, P: 0.5, Trials: 0},
		{Sys: sys, Scenario: sc, P: 1.5, Trials: 10},
		{Sys: sys, Scenario: sc, P: math.NaN(), Trials: 10},
	} {
		if _, err := RunCtx(context.Background(), p); err == nil {
			t.Fatalf("RunCtx(%+v): want error", p)
		}
	}
}
