package des

// eventKind distinguishes the two event types of a timed trial.
type eventKind uint8

const (
	// evArrival delivers a probe result: the element's observed color is
	// sampled at the arrival time and becomes known.
	evArrival eventKind = iota
	// evHedge fires when a probe has been outstanding for the hedge
	// delay; if it still is, one extra speculative probe is issued.
	evHedge
)

// event is one scheduled occurrence on the virtual clock.
type event struct {
	// at is the virtual time in milliseconds.
	at float64
	// seq breaks time ties in issue order, so simultaneous events (the
	// whole trial, under zero latency) process deterministically FIFO.
	seq  uint64
	kind eventKind
	// elem is the probed element of an arrival, or the element whose
	// probe a hedge timer watches.
	elem int
}

// before is the heap order: earliest time first, issue order on ties.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a binary min-heap of events keyed (time, seq). The
// backing slice is sized once per trial (a trial schedules at most one
// arrival and one hedge timer per element), so the steady-state push and
// pop never allocate.
type eventQueue struct {
	events []event
	seq    uint64
}

// newEventQueue returns a queue with room for cap events without
// growing.
func newEventQueue(capacity int) *eventQueue {
	return &eventQueue{events: make([]event, 0, capacity)}
}

// reset empties the queue for the next trial, keeping its storage.
func (q *eventQueue) reset() {
	q.events = q.events[:0]
	q.seq = 0
}

// len returns the number of pending events.
func (q *eventQueue) len() int { return len(q.events) }

// push schedules an event, stamping it with the next sequence number.
//
//quorum:hotpath
func (q *eventQueue) push(at float64, kind eventKind, elem int) {
	if len(q.events) == cap(q.events) {
		q.grow()
	}
	ev := event{at: at, seq: q.seq, kind: kind, elem: elem}
	q.seq++
	q.events = q.events[:len(q.events)+1]
	i := len(q.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.before(q.events[parent]) {
			break
		}
		q.events[i] = q.events[parent]
		i = parent
	}
	q.events[i] = ev
}

// grow doubles the backing storage; it is split out so the steady-state
// push stays allocation-free once the trial-sized queue is built.
func (q *eventQueue) grow() {
	events := make([]event, len(q.events), 2*cap(q.events)+4)
	copy(events, q.events)
	q.events = events
}

// pop removes and returns the earliest event. The queue must not be
// empty.
//
//quorum:hotpath
func (q *eventQueue) pop() event {
	top := q.events[0]
	last := q.events[len(q.events)-1]
	q.events = q.events[:len(q.events)-1]
	n := len(q.events)
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.events[right].before(q.events[left]) {
			child = right
		}
		if !q.events[child].before(last) {
			break
		}
		q.events[i] = q.events[child]
		i = child
	}
	if n > 0 {
		q.events[i] = last
	}
	return top
}
