package des

import (
	"math/rand/v2"

	"probequorum/internal/bitset"
	"probequorum/internal/coloring"
	"probequorum/internal/core"
	"probequorum/internal/probe"
	"probequorum/internal/quorum"
)

// Scheduler adapts a system's probe strategy into a temporal policy: the
// strategy is replayed against the colors observed so far to decide the
// next element to issue. A Scheduler is immutable and safe for
// concurrent use; each worker carries its own replay state.
//
// Resolution mirrors the façade's witness dispatch: the system's own
// Prober (or RandomizedProber) strategy when it has one, else the
// generic sequential (or random) scan over quorum.Finder systems.
type Scheduler struct {
	n          int
	randomized bool
	run        func(o probe.Oracle, rng *rand.Rand) probe.Witness
}

// schedulable is the Finder fallback's requirement, identical to the
// façade's finderSystem.
type schedulable interface {
	quorum.System
	quorum.Finder
}

// NewScheduler resolves the probe strategy of sys into a Scheduler.
// With randomized set, the system's randomized worst-case strategy is
// used; its random choices are drawn from a fresh per-replay stream
// derived from (seed, trial), so replays within a trial retrace each
// other deterministically.
func NewScheduler(sys quorum.System, randomized bool) (*Scheduler, error) {
	s := &Scheduler{n: sys.Size(), randomized: randomized}
	if randomized {
		switch impl := sys.(type) {
		case probe.RandomizedProber:
			s.run = func(o probe.Oracle, rng *rand.Rand) probe.Witness {
				return impl.ProbeWitnessRandomized(o, rng)
			}
		case schedulable:
			s.run = func(o probe.Oracle, rng *rand.Rand) probe.Witness {
				return core.RandomScan(impl, o, rng)
			}
		default:
			return nil, scenErrf("system %s has no randomized probe strategy to schedule", sys.Name())
		}
		return s, nil
	}
	switch impl := sys.(type) {
	case probe.Prober:
		s.run = func(o probe.Oracle, _ *rand.Rand) probe.Witness {
			return impl.ProbeWitness(o)
		}
	case schedulable:
		s.run = func(o probe.Oracle, _ *rand.Rand) probe.Witness {
			return core.SequentialScan(impl, o)
		}
	default:
		return nil, scenErrf("system %s has no probe strategy to schedule", sys.Name())
	}
	return s, nil
}

// replayStop is the panic sentinel that aborts a replay at the first
// probe of an element whose color is not yet known: that element is the
// strategy's next choice.
type replayStop struct{}

// replayOracle is the probe.Oracle a replay answers from. Elements with
// an observed color answer it; elements with a probe in flight answer a
// speculative green (the optimistic assumption the window and hedge
// disciplines run ahead on); the first probe of any other element aborts
// the replay via panic(replayStop{}).
//
// Probe accounting mimics ColoringOracle: distinct elements only, so a
// strategy consulting Probes() mid-run sees exactly what it would see
// against the static oracle.
type replayOracle struct {
	known      []coloring.Color // indexed by element; 0 = unknown
	inflight   *bitset.Set      // elements answering speculative green
	probed     *bitset.Set
	count      int
	next       int
	speculated bool
}

var _ probe.Oracle = (*replayOracle)(nil)

func newReplayOracle(n int) *replayOracle {
	return &replayOracle{
		known:  make([]coloring.Color, n),
		probed: bitset.New(n),
		next:   -1,
	}
}

// reset prepares the oracle for one replay against the given in-flight
// set (nil disables speculation). The known colors persist across
// replays of a trial; resetTrial clears them.
func (o *replayOracle) reset(inflight *bitset.Set) {
	o.inflight = inflight
	o.probed.Clear()
	o.count = 0
	o.next = -1
	o.speculated = false
}

// resetTrial additionally forgets all observed colors.
func (o *replayOracle) resetTrial() {
	clear(o.known)
	o.reset(nil)
}

// Probe implements probe.Oracle.
func (o *replayOracle) Probe(e int) coloring.Color {
	c := o.known[e]
	if c == 0 {
		if o.inflight == nil || !o.inflight.Contains(e) {
			o.next = e
			panic(replayStop{})
		}
		o.speculated = true
		c = coloring.Green
	}
	if !o.probed.Contains(e) {
		o.probed.Add(e)
		o.count++
	}
	return c
}

// Probes implements probe.Oracle.
func (o *replayOracle) Probes() int { return o.count }

// Probed implements probe.Oracle.
func (o *replayOracle) Probed() *bitset.Set { return o.probed.Clone() }

// stepResult is one replay's verdict.
type stepResult struct {
	// next is the first element the strategy probed without a known or
	// speculative answer (-1 when the replay ran to termination).
	next int
	// terminated reports the strategy returned a witness over the
	// answered colors.
	terminated bool
	// speculated reports whether any answer was a speculative green. A
	// replay that terminated without speculation proves the trial is
	// complete: the witness stands on observed colors alone.
	speculated bool
}

// step replays the strategy once against the observed colors, answering
// elements of inflight with speculative greens (pass nil to forbid
// speculation). rng must be a fresh stream positioned identically for
// every replay of the trial; it is ignored by deterministic strategies.
func (s *Scheduler) step(o *replayOracle, inflight *bitset.Set, rng *rand.Rand) (res stepResult) {
	o.reset(inflight)
	res.next = -1
	defer func() {
		res.speculated = o.speculated
		if r := recover(); r != nil {
			if _, ok := r.(replayStop); !ok {
				panic(r)
			}
			res.next = o.next
		}
	}()
	s.run(o, rng)
	res.terminated = true
	return res
}
