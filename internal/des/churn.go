package des

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"probequorum/internal/coloring"
)

// churnKind enumerates the churn families.
type churnKind uint8

const (
	churnNone churnKind = iota
	churnFlap
	churnZoneOut
	churnScript
)

// Churn is a compiled churn plan: a pure rule for the state of element
// e at virtual time t, evolving the initial coloring mid-evaluation.
// The zero value is no churn — states frozen at the initial coloring.
type Churn struct {
	kind churnKind

	// flap: alternating exponential holding times.
	upMS, downMS float64

	// zoneout: one seeded zone of nzones forced red in the window.
	nzones         int
	startMS, durMS float64

	// script: explicit forced up/down steps, sorted by time.
	steps []churnStep
}

// churnStep is one scripted override: from atMS on, elements [lo, hi]
// are forced down (red) or up (green) until a later step covers them.
type churnStep struct {
	atMS   float64
	lo, hi int
	down   bool
}

// ParseChurn parses the churn plan grammar:
//
//	""                          no churn
//	flap:UPMS,DOWNMS            each element flaps independently with
//	                            exponential holding times (mean UPMS up,
//	                            DOWNMS down), starting from its initial
//	                            color at t=0
//	zoneout:NZONES,STARTMS,DURMS  elements are striped into NZONES zones
//	                            (e mod NZONES); one zone, seeded per
//	                            trial, is forced red during
//	                            [STARTMS, STARTMS+DURMS)
//	script:STEP;STEP;...        scripted timeline; STEP is down@MS=LO-HI
//	                            or up@MS=LO-HI, forcing the inclusive
//	                            element range from time MS on — later
//	                            steps override earlier ones
func ParseChurn(s string) (Churn, error) {
	s = strings.TrimSpace(s)
	var c Churn
	if s == "" || s == "none" {
		return c, nil
	}
	name, arg, _ := strings.Cut(s, ":")
	switch name {
	case "flap":
		vals, err := floatArgs(arg, 2)
		if err != nil {
			return c, scenErrf("bad flap spec %q: %v", s, err)
		}
		c.kind, c.upMS, c.downMS = churnFlap, vals[0], vals[1]
		if !(c.upMS > 0) || !(c.downMS > 0) || math.IsInf(c.upMS, 0) || math.IsInf(c.downMS, 0) {
			return c, scenErrf("bad flap holding times up=%v down=%v ms: want positive finite means", c.upMS, c.downMS)
		}
	case "zoneout":
		vals, err := floatArgs(arg, 3)
		if err != nil {
			return c, scenErrf("bad zoneout spec %q: %v", s, err)
		}
		c.kind = churnZoneOut
		c.nzones = int(vals[0])
		if float64(c.nzones) != vals[0] || c.nzones < 1 {
			return c, scenErrf("bad zone count %v: want a positive integer", vals[0])
		}
		c.startMS, c.durMS = vals[1], vals[2]
		if !(c.startMS >= 0) || !(c.durMS >= 0) || math.IsInf(c.startMS, 0) || math.IsInf(c.durMS, 0) {
			return c, scenErrf("bad zoneout window start=%v dur=%v ms", c.startMS, c.durMS)
		}
	case "script":
		c.kind = churnScript
		for _, stepSpec := range strings.Split(arg, ";") {
			step, err := parseStep(stepSpec)
			if err != nil {
				return c, err
			}
			c.steps = append(c.steps, step)
		}
		if len(c.steps) == 0 {
			return c, scenErrf("empty script churn plan")
		}
		// Stable insertion sort by time keeps equal-time steps in spec
		// order, so "later in the spec wins" holds at equal times too.
		for i := 1; i < len(c.steps); i++ {
			for j := i; j > 0 && c.steps[j].atMS < c.steps[j-1].atMS; j-- {
				c.steps[j], c.steps[j-1] = c.steps[j-1], c.steps[j]
			}
		}
	default:
		return c, scenErrf("unknown churn family %q (known: flap, zoneout, script)", name)
	}
	return c, nil
}

// parseStep parses one scripted step: down@MS=LO-HI or up@MS=LO-HI.
func parseStep(s string) (churnStep, error) {
	var step churnStep
	s = strings.TrimSpace(s)
	verb, rest, ok := strings.Cut(s, "@")
	if !ok {
		return step, scenErrf("bad script step %q: want down@MS=LO-HI or up@MS=LO-HI", s)
	}
	switch verb {
	case "down":
		step.down = true
	case "up":
	default:
		return step, scenErrf("bad script verb %q in step %q: want down or up", verb, s)
	}
	atSpec, rangeSpec, ok := strings.Cut(rest, "=")
	if !ok {
		return step, scenErrf("bad script step %q: want down@MS=LO-HI or up@MS=LO-HI", s)
	}
	at, err := strconv.ParseFloat(strings.TrimSpace(atSpec), 64)
	if err != nil || !(at >= 0) || math.IsInf(at, 0) {
		return step, scenErrf("bad script time %q in step %q", atSpec, s)
	}
	step.atMS = at
	loSpec, hiSpec, ok := strings.Cut(rangeSpec, "-")
	if !ok {
		hiSpec = loSpec
	}
	step.lo, err = strconv.Atoi(strings.TrimSpace(loSpec))
	if err != nil {
		return step, scenErrf("bad element range %q in step %q", rangeSpec, s)
	}
	step.hi, err = strconv.Atoi(strings.TrimSpace(hiSpec))
	if err != nil {
		return step, scenErrf("bad element range %q in step %q", rangeSpec, s)
	}
	if step.lo < 0 || step.hi < step.lo {
		return step, scenErrf("bad element range %d-%d in step %q", step.lo, step.hi, s)
	}
	return step, nil
}

// String returns the canonical spec of the plan.
func (c Churn) String() string {
	switch c.kind {
	case churnNone:
		return "none"
	case churnFlap:
		return "flap:" + ftoa(c.upMS) + "," + ftoa(c.downMS)
	case churnZoneOut:
		return fmt.Sprintf("zoneout:%d,%s,%s", c.nzones, ftoa(c.startMS), ftoa(c.durMS))
	case churnScript:
		parts := make([]string, len(c.steps))
		for i, st := range c.steps {
			verb := "up"
			if st.down {
				verb = "down"
			}
			parts[i] = fmt.Sprintf("%s@%s=%d-%d", verb, ftoa(st.atMS), st.lo, st.hi)
		}
		return "script:" + strings.Join(parts, ";")
	}
	return "none"
}

// active reports whether the plan can change any state.
func (c *Churn) active() bool { return c.kind != churnNone }

// churnTrial is the per-trial churn context: the seeded zone choice of
// a zoneout plan and the PRNG scratch of flap walks. One value per
// worker, reset per trial.
type churnTrial struct {
	seed  uint64
	trial uint64
	zone  int
	g     prng
}

// reset rebinds the context to one trial, drawing the trial's zone for
// zoneout plans.
func (ct *churnTrial) reset(c *Churn, seed uint64, trial int) {
	ct.seed, ct.trial = seed, uint64(trial)+1
	if c.kind == churnZoneOut {
		ct.g.seed(seed^saltZone, ct.trial)
		ct.zone = int(ct.g.uint64() % uint64(c.nzones))
	}
}

// colorAt returns the state of element e at virtual time t, given its
// color in the initial coloring. It is a pure function of
// (plan, seed, trial, e, t) and allocates nothing.
//
//quorum:hotpath
func (c *Churn) colorAt(ct *churnTrial, e int, t float64, base coloring.Color) coloring.Color {
	switch c.kind {
	case churnFlap:
		// Alternating renewal walked from t=0: each element follows its
		// own seeded stream, so the walk is reproducible per (trial, e)
		// at any parallelism.
		ct.g.seed(ct.seed^saltFlap^elemSalt(e), ct.trial)
		state := base
		for at := 0.0; ; {
			mean := c.upMS
			if state == coloring.Red {
				mean = c.downMS
			}
			at += ct.g.exp(mean)
			if at > t {
				return state
			}
			state = state.Opposite()
		}
	case churnZoneOut:
		if e%c.nzones == ct.zone && t >= c.startMS && t < c.startMS+c.durMS {
			return coloring.Red
		}
	case churnScript:
		forced := base
		for i := range c.steps {
			st := &c.steps[i]
			if st.atMS > t {
				break
			}
			if e >= st.lo && e <= st.hi {
				if st.down {
					forced = coloring.Red
				} else {
					forced = coloring.Green
				}
			}
		}
		return forced
	}
	return base
}

// PRNG stream salts: every derived stream of a trial — latency draws,
// flap walks, zone choices, randomized-strategy replays — mixes its own
// salt into the scenario seed, so streams never alias each other or the
// initial-coloring stream (which is deliberately unsalted: it must
// consume exactly the static engine's (seed, trial) stream for the
// zero-latency differential to hold bit for bit).
const (
	saltLatency  uint64 = 0x9d5c_14ab_35e1_0d47
	saltFlap     uint64 = 0x6b79_2f3a_d0c5_9b21
	saltZone     uint64 = 0x3ec4_a1f7_57b8_6e93
	saltStrategy uint64 = 0xc8d1_7e09_4f26_b5d5
)

// elemSalt spreads an element index across the seed space (a
// golden-ratio multiply), so per-element flap streams are independent.
func elemSalt(e int) uint64 { return (uint64(e) + 1) * 0x9e3779b97f4a7c15 }
