package des

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"
)

// prng is an inline seeded generator (the PCG core of math/rand/v2)
// embedded by value in trial state, so the per-event sampling path
// allocates nothing. Everything it produces is a pure function of the
// two seed words.
type prng struct{ pcg rand.PCG }

func (g *prng) seed(a, b uint64) { g.pcg.Seed(a, b) }

//quorum:hotpath
func (g *prng) uint64() uint64 { return g.pcg.Uint64() }

// float64 returns a uniform draw in [0, 1), by the same 53-bit
// construction math/rand/v2 uses.
//
//quorum:hotpath
func (g *prng) float64() float64 { return float64(g.pcg.Uint64()>>11) / (1 << 53) }

// exp returns an exponential draw with the given mean.
//
//quorum:hotpath
func (g *prng) exp(mean float64) float64 { return -mean * math.Log(1-g.float64()) }

// normal returns a standard normal draw (Box–Muller, one pair of
// uniforms per call; the second variate is deliberately discarded so a
// draw consumes a fixed amount of the stream).
//
//quorum:hotpath
func (g *prng) normal() float64 {
	u1 := 1 - g.float64() // (0, 1]: the log below must not see zero
	u2 := g.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// latKind enumerates the latency families.
type latKind uint8

const (
	latConst latKind = iota
	latUniform
	latExp
	latLognorm
)

// Latency is a compiled per-element probe latency model: a base
// distribution plus optional per-zone offsets (elements striped into
// zones by index; zone z adds z*offset ms to every draw). The zero
// value is const:0 — probes return instantly.
type Latency struct {
	kind    latKind
	a, b    float64
	zones   int
	zoneOff float64
}

// ParseLatency parses the latency spec grammar:
//
//	""                    const:0 (instant probes)
//	const:MS              every probe takes MS ms
//	uniform:LO,HI         uniform in [LO, HI] ms
//	exp:MEAN              exponential with mean MEAN ms
//	lognorm:MU,SIGMA      exp(MU + SIGMA·Z) ms, Z standard normal
//
// Any form takes an optional "+zone:NZONES,OFFMS" suffix: element e
// belongs to zone e mod NZONES, and its probes gain zone·OFFMS ms.
func ParseLatency(s string) (Latency, error) {
	s = strings.TrimSpace(s)
	var l Latency
	if s == "" {
		return l, nil
	}
	base, zoneSpec, hasZone := strings.Cut(s, "+")
	if hasZone {
		arg, ok := strings.CutPrefix(strings.TrimSpace(zoneSpec), "zone:")
		if !ok {
			return l, scenErrf("bad latency suffix %q: want +zone:NZONES,OFFMS", zoneSpec)
		}
		vals, err := floatArgs(arg, 2)
		if err != nil {
			return l, scenErrf("bad zone offsets %q: %v", arg, err)
		}
		l.zones = int(vals[0])
		if float64(l.zones) != vals[0] || l.zones < 1 {
			return l, scenErrf("bad zone count %v: want a positive integer", vals[0])
		}
		if vals[1] < 0 || math.IsNaN(vals[1]) || math.IsInf(vals[1], 0) {
			return l, scenErrf("bad zone offset %v ms: want a nonnegative finite value", vals[1])
		}
		l.zoneOff = vals[1]
	}
	name, arg, _ := strings.Cut(strings.TrimSpace(base), ":")
	var want int
	switch name {
	case "const":
		l.kind, want = latConst, 1
	case "uniform":
		l.kind, want = latUniform, 2
	case "exp":
		l.kind, want = latExp, 1
	case "lognorm":
		l.kind, want = latLognorm, 2
	default:
		return l, scenErrf("unknown latency family %q (known: const, uniform, exp, lognorm)", name)
	}
	vals, err := floatArgs(arg, want)
	if err != nil {
		return l, scenErrf("bad latency spec %q: %v", s, err)
	}
	l.a = vals[0]
	if want == 2 {
		l.b = vals[1]
	}
	switch l.kind {
	case latConst, latExp:
		if l.a < 0 || math.IsNaN(l.a) || math.IsInf(l.a, 0) {
			return l, scenErrf("bad latency parameter %v ms: want a nonnegative finite value", l.a)
		}
	case latUniform:
		if !(l.a >= 0 && l.b >= l.a) || math.IsInf(l.b, 0) {
			return l, scenErrf("bad uniform latency bounds [%v, %v] ms", l.a, l.b)
		}
	case latLognorm:
		if math.IsNaN(l.a) || math.IsInf(l.a, 0) || !(l.b >= 0) || math.IsInf(l.b, 0) {
			return l, scenErrf("bad lognormal parameters mu=%v sigma=%v", l.a, l.b)
		}
	}
	return l, nil
}

// String returns the canonical spec of the model.
func (l Latency) String() string {
	var base string
	switch l.kind {
	case latConst:
		base = "const:" + ftoa(l.a)
	case latUniform:
		base = "uniform:" + ftoa(l.a) + "," + ftoa(l.b)
	case latExp:
		base = "exp:" + ftoa(l.a)
	case latLognorm:
		base = "lognorm:" + ftoa(l.a) + "," + ftoa(l.b)
	}
	if l.zones > 0 {
		base += fmt.Sprintf("+zone:%d,%s", l.zones, ftoa(l.zoneOff))
	}
	return base
}

// sample draws the latency in virtual ms of one probe to element e.
//
//quorum:hotpath
func (l *Latency) sample(e int, g *prng) float64 {
	var ms float64
	switch l.kind {
	case latConst:
		ms = l.a
	case latUniform:
		ms = l.a + (l.b-l.a)*g.float64()
	case latExp:
		ms = g.exp(l.a)
	case latLognorm:
		ms = math.Exp(l.a + l.b*g.normal())
	}
	if l.zones > 0 {
		ms += float64(e%l.zones) * l.zoneOff
	}
	return ms
}

// floatArgs parses exactly want comma-separated floats.
func floatArgs(s string, want int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("want %d comma-separated values, got %d", want, len(parts))
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// ftoa formats a float in its shortest round-trip form.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
