package probequorum_test

// Tests for the Query evaluation API: validation, batch fan-out, the
// stable wire encoding, and — load-bearing for the probeserved service —
// cancellation: a done context aborts mid-sweep promptly with ctx.Err()
// and leaves every Evaluator cache consistent for later callers. The
// cancellation tests are run under -race in CI.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"probequorum"
)

func TestQueryValidation(t *testing.T) {
	eval := probequorum.NewEvaluator()
	ctx := context.Background()
	for name, q := range map[string]probequorum.Query{
		"no system":        {Measures: []probequorum.Measure{probequorum.MeasurePC}},
		"no measures":      {Spec: "maj:3"},
		"unknown measure":  {Spec: "maj:3", Measures: []probequorum.Measure{"zoom"}},
		"missing grid":     {Spec: "maj:3", Measures: []probequorum.Measure{probequorum.MeasurePPC}},
		"p out of range":   {Spec: "maj:3", Measures: []probequorum.Measure{probequorum.MeasurePPC}, Ps: []float64{1.5}},
		"negative trials":  {Spec: "maj:3", Measures: []probequorum.Measure{probequorum.MeasurePC}, Trials: -1},
		"trials over cap":  {Spec: "maj:3", Measures: []probequorum.Measure{probequorum.MeasureEstimate}, Ps: []float64{0.5}, Trials: probequorum.MaxQueryTrials + 1},
		"NaN probability":  {Spec: "maj:3", Measures: []probequorum.Measure{probequorum.MeasurePPC}, Ps: []float64{math.NaN()}},
		"unparseable spec": {Spec: "grid:4", Measures: []probequorum.Measure{probequorum.MeasurePC}},
	} {
		if _, err := eval.Do(ctx, q); err == nil {
			t.Errorf("%s: Do accepted %+v", name, q)
		}
	}
	// Measures are case-insensitive and deduplicated; a grid without any
	// p-dependent measure is inert.
	res, err := eval.Do(ctx, probequorum.Query{
		Spec:     "maj:3",
		Measures: []probequorum.Measure{"PC", "pc"},
		Ps:       []float64{0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PC == nil || *res.PC != 3 || len(res.Points) != 0 {
		t.Errorf("result = %+v, want pc=3 and no points", res)
	}
}

func TestDoBatchPerItemErrors(t *testing.T) {
	eval := probequorum.NewEvaluator()
	results, err := eval.DoBatch(context.Background(), []probequorum.Query{
		{Spec: "maj:5", Measures: []probequorum.Measure{probequorum.MeasurePC}},
		{Spec: "nope:2", Measures: []probequorum.Measure{probequorum.MeasurePC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Error != "" || results[0].PC == nil || *results[0].PC != 5 {
		t.Errorf("healthy item: %+v", results[0])
	}
	if results[1].Error == "" || !strings.Contains(results[1].Error, "unknown construction") {
		t.Errorf("failed item: %+v", results[1])
	}
}

func TestDoBatchPreCancelled(t *testing.T) {
	eval := probequorum.NewEvaluator()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := eval.DoBatch(ctx, []probequorum.Query{
		{Spec: "maj:5", Measures: []probequorum.Measure{probequorum.MeasurePC}},
	})
	if !errors.Is(err, context.Canceled) || results != nil {
		t.Errorf("pre-cancelled batch: results=%v err=%v, want nil/Canceled", results, err)
	}
}

// TestDoBatchCancelMidSweep cancels a p-sweep whose full evaluation
// takes tens of seconds and requires a prompt ctx.Err() return, then
// verifies the session's caches survived the abort unpolluted: the same
// Evaluator must afterwards answer the aborted queries bit-identically
// to a fresh session.
func TestDoBatchCancelMidSweep(t *testing.T) {
	eval := probequorum.NewEvaluator()
	// 240 expectimax solves over a 3^13-state space do not finish in
	// 50ms on any hardware this runs on, so the cancel always lands
	// mid-batch; the deadline below only guards promptness.
	ps := make([]float64, 240)
	for i := range ps {
		ps[i] = float64(i+1) / float64(len(ps)+1)
	}
	queries := []probequorum.Query{
		{Spec: "maj:13", Measures: []probequorum.Measure{probequorum.MeasurePPC}, Ps: ps},
		{Spec: "triang:5", Measures: []probequorum.Measure{probequorum.MeasurePPC}, Ps: ps},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, err := eval.DoBatch(ctx, queries)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: err = %v (results %v), want context.Canceled", err, results)
	}
	if elapsed > 30*time.Second {
		t.Errorf("cancelled batch took %v to return; not prompt", elapsed)
	}

	// Cache consistency: the aborted session answers the same measures
	// bit-identically to an untouched one. One grid point keeps the
	// -race run affordable; it hits the same memo paths as many.
	fresh := probequorum.NewEvaluator()
	check := probequorum.Query{
		Spec:     "maj:13",
		Measures: []probequorum.Measure{probequorum.MeasurePPC, probequorum.MeasureAvailability},
		Ps:       []float64{ps[0]},
	}
	got, err := eval.Do(context.Background(), check)
	if err != nil {
		t.Fatalf("post-cancel Do on the aborted session: %v", err)
	}
	want, err := fresh.Do(context.Background(), check)
	if err != nil {
		t.Fatalf("post-cancel Do on a fresh session: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("aborted session diverged from fresh session:\n%s\n%s", gotJSON, wantJSON)
	}
}

// TestCancelDuringTableBuildLeavesCacheClean aborts the very first
// artifact build (the witness table) and checks the entry is not
// poisoned with a cancellation error.
func TestCancelDuringTableBuildLeavesCacheClean(t *testing.T) {
	eval := probequorum.NewEvaluator()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := probequorum.Query{Spec: "cw:1,2,3,4", Measures: []probequorum.Measure{probequorum.MeasurePC}}
	if _, err := eval.Do(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	res, err := eval.Do(context.Background(), q)
	if err != nil {
		t.Fatalf("Do after aborted table build: %v", err)
	}
	if res.PC == nil || *res.PC != 10 {
		t.Errorf("PC = %v, want 10 (CW systems are evasive)", res.PC)
	}
}

// TestEstimateCancellation aborts a Monte Carlo estimate mid-loop.
func TestEstimateCancellation(t *testing.T) {
	eval := probequorum.NewEvaluator()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := eval.Do(ctx, probequorum.Query{
		Spec:     "maj:101",
		Measures: []probequorum.Measure{probequorum.MeasureEstimate},
		Ps:       []float64{0.5},
		Trials:   probequorum.MaxQueryTrials, // tens of seconds uncancelled
		Seed:     3,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("estimate: err = %v, want context.Canceled", err)
	}
	// The session still estimates normally afterwards.
	res, err := eval.Do(context.Background(), probequorum.Query{
		Spec:     "maj:101",
		Measures: []probequorum.Measure{probequorum.MeasureEstimate},
		Ps:       []float64{0.5},
		Trials:   2000,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := probequorum.MustParse("maj:101")
	mean, half, err := probequorum.EstimateAverageProbes(sys, 0.5, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est := res.Point(0.5).Estimate; est.Mean != mean || est.HalfCI != half {
		t.Errorf("post-cancel estimate %+v, façade (%v, %v)", est, mean, half)
	}
}

// TestResultWireEncoding pins the field names of the shared JSON
// encoding that probeserved, the client and quorumctl -json exchange.
func TestResultWireEncoding(t *testing.T) {
	eval := probequorum.NewEvaluator()
	res, err := eval.Do(context.Background(), probequorum.Query{
		Spec:     "maj:3",
		Measures: []probequorum.Measure{probequorum.MeasurePC, probequorum.MeasurePPC, probequorum.MeasureEstimate},
		Ps:       []float64{0.5},
		Trials:   100,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"spec":"maj:3"`, `"name":"Maj(3)"`, `"n":3`, `"pc":3`, `"points":[`, `"p":0.5`, `"ppc":2.5`, `"mean":`, `"half_ci":`, `"trials":100`, `"seed":2`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("wire encoding missing %s:\n%s", key, data)
		}
	}
	var back probequorum.Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec != res.Spec || *back.PC != *res.PC || *back.Points[0].PPC != *res.Points[0].PPC {
		t.Errorf("round trip lost data: %+v vs %+v", back, res)
	}
}

// TestBatchSharesSpecCache checks that two queries naming the same
// construction share one artifact cache entry: the second is answered
// from the memo, bit-identically.
func TestBatchSharesSpecCache(t *testing.T) {
	eval := probequorum.NewEvaluator()
	q := probequorum.Query{Spec: "maj:9", Measures: []probequorum.Measure{probequorum.MeasurePPC}, Ps: []float64{0.3}}
	ctx := context.Background()
	results, err := eval.DoBatch(ctx, []probequorum.Query{q, q})
	if err != nil {
		t.Fatal(err)
	}
	if *results[0].Points[0].PPC != *results[1].Points[0].PPC {
		t.Errorf("same-spec queries disagree: %v vs %v", *results[0].Points[0].PPC, *results[1].Points[0].PPC)
	}
}
