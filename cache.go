package probequorum

import (
	"context"
	"errors"

	"probequorum/internal/approx"
	"probequorum/internal/spec"
	"probequorum/internal/store"
)

// EngineVersion keys persistent artifact records to the DP/LP engines
// that produced them. Bump it whenever a change could alter any exact
// artifact bit (a DP tie-break, a table layout, an LP pivot rule):
// records written under a different version silently miss, so an
// upgraded fleet recomputes instead of trusting stale bits.
const EngineVersion uint32 = 1

// ArtifactStore is the persistent, process-shared artifact tier below a
// session's in-memory memos: witness tables, exact PC/PPC values,
// availability polynomial coefficients, optimized strategies and
// resilience values, on disk, keyed by canonical spec and
// EngineVersion. Any number of evaluators — in one process or many —
// may share one store directory; see internal/store for the integrity
// protocol that makes that safe.
type ArtifactStore = store.Store

// ArtifactStoreStats is the ArtifactStore's snapshot: per-kind on-disk
// footprint plus lifetime hit/miss/corruption/write counters.
type ArtifactStoreStats = store.Stats

// ApproxCache is the approximate-answer tier: exact measure values at
// sampled parameter points, served at nearby parameters within a
// query's declared Tolerance and tagged with a guaranteed error bound.
// Queries without a tolerance never touch it.
type ApproxCache = approx.Cache

// ApproxCacheStats is the ApproxCache's snapshot.
type ApproxCacheStats = approx.Stats

// OpenArtifactStore opens (creating if absent) a persistent artifact
// store over dir at the current EngineVersion.
func OpenArtifactStore(dir string) (*ArtifactStore, error) {
	return store.Open(dir, EngineVersion)
}

// NewApproxCache returns an empty approximate-answer cache.
func NewApproxCache() *ApproxCache { return approx.New() }

// WithStore attaches a persistent artifact store to the session: every
// single-flight artifact build consults it before computing (memo →
// approx → store → compute) and persists successful computes back, so a
// restarted or scaled-out fleet sharing the directory warms instantly
// and bit-identically. The store must outlive the Evaluator's use of
// it: large records are served through shared memory mappings that die
// with the store's Close.
func WithStore(s *ArtifactStore) EvaluatorOption {
	return func(e *Evaluator) { e.artifacts = s }
}

// WithApprox attaches an approximate-answer cache: parametric exact
// measures (PPC, availability) computed by this session feed it, and
// queries that declare a positive Tolerance may be answered from it at
// nearby parameters, always carrying the achieved error bound. Queries
// with Tolerance zero never touch it — their answers stay bit-identical
// with or without the cache.
func WithApprox(c *ApproxCache) EvaluatorOption {
	return func(e *Evaluator) { e.approx = c }
}

// ArtifactStore returns the session's persistent store, or nil.
func (e *Evaluator) ArtifactStore() *ArtifactStore { return e.artifacts }

// Approx returns the session's approximate-answer cache, or nil.
func (e *Evaluator) Approx() *ApproxCache { return e.approx }

// WarmStore precomputes and persists the named systems' core artifacts
// (witness table, PC, and PPC plus availability at the given ps) into
// the session's store, so a later process starts warm. It is the engine
// of `quorumctl cache warm`. Systems or measures out of a construction's
// exact reach are skipped, not errors; the first infrastructure error
// (store write failure aside — those are counted, not fatal) aborts.
func (e *Evaluator) WarmStore(specs []string, ps []float64) error {
	for _, sp := range specs {
		sys, err := spec.Parse(sp)
		if err != nil {
			return err
		}
		if _, err := e.ProbeComplexity(sys); err != nil && !outOfExactReach(err) {
			return err
		}
		for _, p := range ps {
			if _, err := e.AverageProbeComplexity(sys, p); err != nil && !outOfExactReach(err) {
				return err
			}
			if _, err := e.AvailabilityCtx(context.Background(), sys, p); err != nil && !outOfExactReach(err) {
				return err
			}
		}
	}
	return nil
}

// outOfExactReach reports whether an error means "this construction has
// no exact answer for this measure" — a per-system condition warming
// skips, not a failure of the warm run.
func outOfExactReach(err error) bool {
	var be *BoundError
	var bu *BudgetError
	var ue *UnsupportedError
	return errors.As(err, &be) || errors.As(err, &bu) || errors.As(err, &ue)
}
