package probequorum_test

// Tests for deadline budgets and graceful degradation (PR 6): a query
// whose DeadlineMS cannot cover its exact measures comes back as a
// degraded answer — typed notes for exact-only measures, Monte Carlo
// estimates with confidence intervals where a sampling fallback exists —
// never as a hard error, and deterministically so for a fixed seed.

import (
	"context"
	"fmt"
	"math/bits"
	"testing"

	"probequorum"
)

// opaqueMaj is majority over n elements exposing only the generic
// capabilities: no closed-form availability (the built-in constructions
// all have one and so never degrade it) and no native strategies, so
// every exact measure needs the 2^n witness table and the fallbacks go
// through the generic Monte Carlo machinery. The single-word mask
// capability keeps table builds cancellable without enumerating the
// C(n, n/2+1) minimal quorums; the quorum-enumeration entry points must
// never be reached on these paths and panic if they are.
type opaqueMaj struct{ n int }

func (o opaqueMaj) Name() string                           { return fmt.Sprintf("OpaqueMaj(%d)", o.n) }
func (o opaqueMaj) Size() int                              { return o.n }
func (o opaqueMaj) ContainsQuorum(s *probequorum.Set) bool { return s.Count() > o.n/2 }
func (o opaqueMaj) ContainsQuorumMask(mask uint64) bool {
	return bits.OnesCount64(mask) > o.n/2
}
func (o opaqueMaj) QuorumMasks() []uint64 { panic("opaqueMaj: QuorumMasks must not be needed") }
func (o opaqueMaj) Quorums() []*probequorum.Set {
	panic("opaqueMaj: Quorums must not be needed")
}

// ProbeWitness probes elements in index order until either color has a
// majority — the minimal Prober capability the ppc fallback needs.
func (o opaqueMaj) ProbeWitness(oc probequorum.Oracle) probequorum.Witness {
	need := o.n/2 + 1
	greens, reds := probequorum.NewSet(o.n), probequorum.NewSet(o.n)
	for e := 0; e < o.n; e++ {
		if oc.Probe(e) == probequorum.Green {
			greens.Add(e)
			if greens.Count() == need {
				return probequorum.Witness{Color: probequorum.Green, Set: greens}
			}
		} else {
			reds.Add(e)
			if reds.Count() == need {
				return probequorum.Witness{Color: probequorum.Red, Set: reds}
			}
		}
	}
	return probequorum.Witness{Color: probequorum.Red, Set: reds}
}

// degradedQuery is an exact workload that cannot finish inside 1ms: the
// n=25 witness table (a 2^25 characteristic-function scan) and the DP
// memos over it take far longer, while the Monte Carlo fallbacks need
// only the wide-mask view and the probing strategy.
func degradedQuery() probequorum.Query {
	return probequorum.Query{
		System: opaqueMaj{25},
		Measures: []probequorum.Measure{
			probequorum.MeasurePC,
			probequorum.MeasurePPC,
			probequorum.MeasureAvailability,
		},
		Ps:         []float64{0.3},
		Seed:       7,
		DeadlineMS: 1,
	}
}

func TestDeadlineDegradesToEstimates(t *testing.T) {
	eval := probequorum.NewEvaluator()
	res, err := eval.Do(context.Background(), degradedQuery())
	if err != nil {
		t.Fatalf("Do: %v", err)
	}

	// pc has no sampling fallback: a note only, and no value.
	if res.PC != nil {
		t.Errorf("PC = %v, want nil under an impossible deadline", *res.PC)
	}
	foundPC := false
	for _, d := range res.Degraded {
		if d.Measure == probequorum.MeasurePC {
			foundPC = true
			if d.Reason != probequorum.DegradeDeadline {
				t.Errorf("pc degradation reason = %q, want %q", d.Reason, probequorum.DegradeDeadline)
			}
			if d.Estimate != nil {
				t.Errorf("pc degradation carries an estimate; pc has no sampling fallback")
			}
		}
	}
	if !foundPC {
		t.Fatalf("no pc degradation note in %+v", res.Degraded)
	}

	// ppc and availability degrade per point, to seeded Monte Carlo
	// estimates with confidence intervals.
	if len(res.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(res.Points))
	}
	pt := res.Points[0]
	if pt.PPC != nil || pt.Availability != nil {
		t.Errorf("exact point values survived an impossible deadline: ppc=%v avail=%v", pt.PPC, pt.Availability)
	}
	got := map[probequorum.Measure]*probequorum.Degradation{}
	for i := range pt.Degraded {
		got[pt.Degraded[i].Measure] = &pt.Degraded[i]
	}
	for _, m := range []probequorum.Measure{probequorum.MeasurePPC, probequorum.MeasureAvailability} {
		d := got[m]
		if d == nil {
			t.Fatalf("no %s degradation at the point; have %+v", m, pt.Degraded)
		}
		if d.Reason != probequorum.DegradeDeadline {
			t.Errorf("%s reason = %q, want %q", m, d.Reason, probequorum.DegradeDeadline)
		}
		if d.Estimate == nil {
			t.Fatalf("%s degradation has no fallback estimate", m)
		}
		if d.Estimate.Trials <= 0 || d.Estimate.HalfCI <= 0 {
			t.Errorf("%s estimate = %+v, want positive trials and a CI", m, *d.Estimate)
		}
	}
	if ppc := got[probequorum.MeasurePPC].Estimate; ppc.Mean < 1 || ppc.Mean > 25 {
		t.Errorf("ppc fallback mean = %v, want within [1, n]", ppc.Mean)
	}
	if av := got[probequorum.MeasureAvailability].Estimate; av.Mean < 0 || av.Mean > 1 {
		t.Errorf("availability fallback mean = %v, want a probability", av.Mean)
	}
}

// TestDeadlineDegradationDeterministic pins that the fallback estimates
// are a pure function of the query seed: the client retry path and the
// bit-identical acceptance check both rely on it.
func TestDeadlineDegradationDeterministic(t *testing.T) {
	extract := func() (ppc, avail probequorum.Estimate) {
		eval := probequorum.NewEvaluator()
		res, err := eval.Do(context.Background(), degradedQuery())
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		if len(res.Points) != 1 {
			t.Fatalf("got %d points, want 1", len(res.Points))
		}
		for _, d := range res.Points[0].Degraded {
			if d.Estimate == nil {
				t.Fatalf("%s degradation has no estimate", d.Measure)
			}
			switch d.Measure {
			case probequorum.MeasurePPC:
				ppc = *d.Estimate
			case probequorum.MeasureAvailability:
				avail = *d.Estimate
			}
		}
		return ppc, avail
	}
	ppc1, avail1 := extract()
	ppc2, avail2 := extract()
	if ppc1 != ppc2 {
		t.Errorf("ppc fallback not deterministic: %+v vs %+v", ppc1, ppc2)
	}
	if avail1 != avail2 {
		t.Errorf("availability fallback not deterministic: %+v vs %+v", avail1, avail2)
	}
}

// TestDeadlineZeroUnchanged pins that queries without a deadline are
// untouched by the degradation machinery.
func TestDeadlineZeroUnchanged(t *testing.T) {
	eval := probequorum.NewEvaluator()
	res, err := eval.Do(context.Background(), probequorum.Query{
		Spec:     "maj:5",
		Measures: []probequorum.Measure{probequorum.MeasurePC},
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.PC == nil || *res.PC != 5 {
		t.Fatalf("PC = %v, want 5", res.PC)
	}
	if len(res.Degraded) != 0 {
		t.Fatalf("unexpected degradations: %+v", res.Degraded)
	}
}

func TestNegativeDeadlineRejected(t *testing.T) {
	eval := probequorum.NewEvaluator()
	_, err := eval.Do(context.Background(), probequorum.Query{
		Spec:       "maj:3",
		Measures:   []probequorum.Measure{probequorum.MeasurePC},
		DeadlineMS: -1,
	})
	if err == nil {
		t.Fatal("negative DeadlineMS accepted")
	}
}
