package probequorum

import (
	"context"
	"errors"
	"fmt"
)

// Artifact kinds counted by the session's build/coalesce statistics.
// "table" is the dense witness table (the 2^n-bit artifact a stampede of
// cold queries would otherwise build N times over), "pc" and "ppc" the
// exact DP solves, "availpoly" the availability failure-count
// polynomial, "strategy" an optimized read/write strategy (quorum
// enumeration plus an LP solve, memoized per workload options) and
// "resilience" the crash-resilience scan.
const (
	artifactTable      = "table"
	artifactPC         = "pc"
	artifactPPC        = "ppc"
	artifactAvailPoly  = "availpoly"
	artifactStrategy   = "strategy"
	artifactResilience = "resilience"
)

// PanicError reports an evaluation that panicked — a third-party System
// whose ContainsQuorum or prober blows up, or a bug in a measure body.
// The panic is recovered at the query (or artifact-build) boundary and
// surfaced as this error, so one poisonous query degrades to a failed
// Result instead of taking down a serving process. Panics are never
// cached: a later query retries cleanly.
type PanicError struct {
	// Op names the computation that panicked, e.g. "table build".
	Op string
	// Value is the recovered panic value.
	Value any
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("probequorum: %s panicked: %v", p.Op, p.Value)
}

// guardPanic runs fn, converting a panic into a *PanicError.
func guardPanic[T any](op string, fn func() (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Op: op, Value: r}
		}
	}()
	return fn()
}

// Cache tier names keyed in EvalStats.Hits and Misses. "memo" is the
// in-process session memo (the evalEntry fields), "approx" the
// approximate-answer cache (consulted only for queries that declare a
// tolerance), "store" the persistent on-disk artifact store. A tier
// that is not configured is never consulted and never counted.
const (
	tierMemo   = "memo"
	tierApprox = "approx"
	tierStore  = "store"
)

// EvalStats is a snapshot of the session's artifact-build accounting.
// Builds and Coalesced are keyed by artifact kind ("table", "pc",
// "ppc", "availpoly", "strategy", "resilience"): Builds counts DP/LP
// computations actually run — a single-flight leader that satisfies its
// waiters from the persistent store does not count a build — and
// Coalesced counts callers that found a build of the artifact they
// needed already in flight and shared its result instead of starting
// their own. Under a stampede of identical cold queries, Builds stays
// at 1 while Coalesced absorbs the rest; under a warm store, Builds
// stays flat entirely.
//
// Hits and Misses are keyed by cache tier ("memo", "approx", "store")
// and count consultations of each configured tier in lookup order:
// session memo first, then the approximate cache where the query's
// tolerance allows, then the persistent store, then compute.
type EvalStats struct {
	Builds    map[string]uint64 `json:"builds"`
	Coalesced map[string]uint64 `json:"coalesced"`
	Hits      map[string]uint64 `json:"hits"`
	Misses    map[string]uint64 `json:"misses"`
}

// Stats returns a snapshot of the session's build, coalescing and
// cache-tier counters. It is safe for concurrent use.
func (e *Evaluator) Stats() EvalStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return EvalStats{
		Builds:    copyCounts(e.buildCount),
		Coalesced: copyCounts(e.coalesceCount),
		Hits:      copyCounts(e.hitCount),
		Misses:    copyCounts(e.missCount),
	}
}

// copyCounts snapshots one counter map (never nil, so the JSON shape is
// stable: empty maps marshal as {}).
func copyCounts(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// count bumps one stats counter.
func (e *Evaluator) count(m *map[string]uint64, kind string) {
	e.statsMu.Lock()
	if *m == nil {
		*m = map[string]uint64{}
	}
	(*m)[kind]++
	e.statsMu.Unlock()
}

// storeTier adapts one artifact kind to the persistent store for one
// single-flight call. fetch loads a previously persisted value and
// persist writes a freshly computed one; both may block on disk I/O —
// they run on the detached build goroutine with no locks held, never
// under ent.mu. A nil *storeTier means no store is configured for this
// artifact and the persistent tier is neither consulted nor counted.
type storeTier struct {
	fetch   func() (any, bool)
	persist func(val any)
}

// buildCall is one in-flight single-flight artifact build. waiters is
// guarded by the owning entry's mutex; everything else is written once
// by the build goroutine before done closes.
type buildCall struct {
	done    chan struct{}
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

// singleflight coalesces concurrent builds of one artifact of one cache
// entry: however many queries need it, exactly one build runs, and every
// caller — the leader that started it included — parks on a channel it
// abandons the moment its own context is done. The build itself runs on
// a context detached from any single request, cancelled only when the
// last interested waiter has walked away; a cancelled leader therefore
// hands the build over to the surviving followers instead of aborting
// it, and an abandoned build caches nothing, so the PR 3 invariant —
// cancellation never poisons a cache — holds with coalescing layered on.
//
// cached and store run under ent.mu and must not block; build and the
// tier callbacks run with no locks held. Cancellations and recovered
// panics are returned to the waiters of the moment but never stored.
//
// The memo tier's hit/miss counters are bumped on the first loop
// iteration only, so one logical call counts one consultation however
// many abandonment retries it takes.
func (e *Evaluator) singleflight(ctx context.Context, ent *evalEntry, kind, key string,
	cached func() (any, error, bool),
	store func(val any, err error),
	tier *storeTier,
	build func(ctx context.Context) (any, error),
) (any, error) {
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ent.mu.Lock()
		if v, err, ok := cached(); ok {
			ent.mu.Unlock()
			if first {
				e.count(&e.hitCount, tierMemo)
			}
			return v, err
		}
		if first {
			e.count(&e.missCount, tierMemo)
			first = false
		}
		call, inflight := ent.builds[key]
		if inflight {
			call.waiters++
			e.count(&e.coalesceCount, kind)
		} else {
			buildCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
			call = &buildCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
			if ent.builds == nil {
				ent.builds = map[string]*buildCall{}
			}
			ent.builds[key] = call
			go e.runBuild(buildCtx, ent, kind, key, call, store, tier, build)
		}
		ent.mu.Unlock()

		select {
		case <-call.done:
			if isCtxErr(call.err) {
				// The build died of abandonment in the window between our
				// registration and its completion; our own context is
				// still live, so loop and start a fresh one.
				continue
			}
			return call.val, call.err
		case <-ctx.Done():
			ent.mu.Lock()
			call.waiters--
			abandoned := call.waiters == 0
			ent.mu.Unlock()
			if abandoned {
				call.cancel()
			}
			return nil, ctx.Err()
		}
	}
}

// runBuild satisfies one detached single-flight artifact build and
// publishes its outcome. The persistent store, when configured, is
// consulted before computing: a verified store record satisfies every
// waiter bit-identically with no build counted, which is what keeps a
// warm process's Builds flat. A computed value is persisted back only
// on success, and only after the memo publication — disk latency never
// extends the entry lock or the waiters' wait.
//
// Permanent results and errors are stored in the entry cache;
// cancellations (every waiter gone) and recovered panics are handed to
// the current waiters but never cached, so the next query rebuilds
// cleanly.
func (e *Evaluator) runBuild(buildCtx context.Context, ent *evalEntry, kind, key string, call *buildCall,
	store func(val any, err error),
	tier *storeTier,
	build func(ctx context.Context) (any, error),
) {
	defer call.cancel()
	var val any
	var err error
	fetched := false
	if tier != nil {
		if v, ok := tier.fetch(); ok {
			val, fetched = v, true
			e.count(&e.hitCount, tierStore)
		} else {
			e.count(&e.missCount, tierStore)
		}
	}
	if !fetched {
		e.count(&e.buildCount, kind)
		val, err = guardPanic(kind+" build", func() (any, error) { return build(buildCtx) })
	}
	var pe *PanicError
	cacheable := !isCtxErr(err) && !errors.As(err, &pe)
	ent.mu.Lock()
	delete(ent.builds, key)
	call.val, call.err = val, err
	if cacheable {
		store(val, err)
	}
	ent.mu.Unlock()
	if tier != nil && !fetched && err == nil {
		tier.persist(val)
	}
	close(call.done)
}
