package probequorum_test

// One benchmark per table and figure of the paper (see DESIGN.md's
// experiment index). Each witness-search benchmark reports the custom
// metric probes/op — the paper's probe complexity — next to the usual
// ns/op, so `go test -bench=.` regenerates the measured columns.

import (
	"math/rand/v2"
	"testing"

	"probequorum"
	"probequorum/internal/availability"
	"probequorum/internal/coloring"
	"probequorum/internal/core"
	"probequorum/internal/load"
	"probequorum/internal/probe"
	"probequorum/internal/quorum"
	"probequorum/internal/sim"
	"probequorum/internal/stats"
	"probequorum/internal/strategy"
	"probequorum/internal/systems"
	"probequorum/internal/urn"
	"probequorum/internal/walk"
)

// benchWitnessSearch runs a witness search per iteration over colorings
// drawn by mkColoring and reports average probes.
func benchWitnessSearch(b *testing.B, n int,
	mkColoring func(rng *rand.Rand) *coloring.Coloring,
	search func(o probe.Oracle, rng *rand.Rand) probe.Witness) {
	b.Helper()
	rng := rand.New(rand.NewPCG(42, uint64(n)))
	totalProbes := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := mkColoring(rng)
		o := probe.NewOracle(col)
		search(o, rng)
		totalProbes += o.Probes()
	}
	b.ReportMetric(float64(totalProbes)/float64(b.N), "probes/op")
}

func iidHalf(n int) func(rng *rand.Rand) *coloring.Coloring {
	return func(rng *rand.Rand) *coloring.Coloring { return coloring.IID(n, 0.5, rng) }
}

// --- Table 1, probabilistic model (p = 1/2) ---

func BenchmarkTable1MajProbabilistic(b *testing.B) {
	m, _ := systems.NewMaj(101)
	benchWitnessSearch(b, m.Size(), iidHalf(m.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.ProbeMaj(m, o) })
}

func BenchmarkTable1TriangProbabilistic(b *testing.B) {
	tri, _ := systems.NewTriang(10)
	benchWitnessSearch(b, tri.Size(), iidHalf(tri.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.ProbeCW(tri, o) })
}

func BenchmarkTable1TreeProbabilistic(b *testing.B) {
	tr, _ := systems.NewTree(7)
	benchWitnessSearch(b, tr.Size(), iidHalf(tr.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.ProbeTree(tr, o) })
}

func BenchmarkTable1HQSProbabilistic(b *testing.B) {
	hq, _ := systems.NewHQS(5)
	benchWitnessSearch(b, hq.Size(), iidHalf(hq.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.ProbeHQS(hq, o) })
}

// --- Table 1, randomized worst-case model (adversarial inputs) ---

func BenchmarkTable1MajRandomized(b *testing.B) {
	m, _ := systems.NewMaj(101)
	hard := coloring.FromReds(m.Size(), nil)
	for e := 0; e < m.Threshold(); e++ {
		hard.SetColor(e, coloring.Red)
	}
	benchWitnessSearch(b, m.Size(),
		func(*rand.Rand) *coloring.Coloring { return hard },
		func(o probe.Oracle, rng *rand.Rand) probe.Witness { return core.RProbeMaj(m, o, rng) })
}

func BenchmarkTable1TriangRandomized(b *testing.B) {
	tri, _ := systems.NewTriang(10)
	benchWitnessSearch(b, tri.Size(),
		func(rng *rand.Rand) *coloring.Coloring { return core.HardCWSample(tri, rng) },
		func(o probe.Oracle, rng *rand.Rand) probe.Witness { return core.RProbeCW(tri, o, rng) })
}

func BenchmarkTable1TreeRandomized(b *testing.B) {
	tr, _ := systems.NewTree(7)
	benchWitnessSearch(b, tr.Size(),
		func(rng *rand.Rand) *coloring.Coloring { return core.HardTreeSample(tr, rng) },
		func(o probe.Oracle, rng *rand.Rand) probe.Witness { return core.RProbeTree(tr, o, rng) })
}

func BenchmarkTable1HQSRandomized(b *testing.B) {
	hq, _ := systems.NewHQS(5)
	hard := core.WorstCaseHQS(hq, coloring.Green, nil)
	benchWitnessSearch(b, hq.Size(),
		func(*rand.Rand) *coloring.Coloring { return hard },
		func(o probe.Oracle, rng *rand.Rand) probe.Witness { return core.IRProbeHQS(hq, o, rng) })
}

// --- Figures ---

// BenchmarkFigure4Maj3Exact regenerates the §2.3 worked example: the
// optimal PPC of Maj3 by knowledge-state DP.
func BenchmarkFigure4Maj3Exact(b *testing.B) {
	m, _ := systems.NewMaj(3)
	for i := 0; i < b.N; i++ {
		if v, err := strategy.OptimalPPC(m, 0.5); err != nil || v != 2.5 {
			b.Fatalf("OptimalPPC = %v, %v", v, err)
		}
	}
}

// BenchmarkFigure5ProbeCW exercises Algorithm Probe_CW (Fig. 5) on a large
// wall; probes/op tracks the 2k-1 = 19 expectation bound despite n = 1276.
func BenchmarkFigure5ProbeCW(b *testing.B) {
	widths := make([]int, 10)
	widths[0] = 1
	for i := 1; i < 10; i++ {
		widths[i] = 1 + 20*i
	}
	cw, _ := systems.NewCW(widths)
	benchWitnessSearch(b, cw.Size(), iidHalf(cw.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.ProbeCW(cw, o) })
}

// BenchmarkFigure6HQSOptimality regenerates the Theorem 3.9 comparison:
// the exhaustive optimal PPC of the height-2 HQS.
func BenchmarkFigure6HQSOptimality(b *testing.B) {
	hq, _ := systems.NewHQS(2)
	for i := 0; i < b.N; i++ {
		if v, err := strategy.OptimalPPC(hq, 0.5); err != nil || v <= 0 {
			b.Fatalf("OptimalPPC = %v, %v", v, err)
		}
	}
}

// BenchmarkFigure7RProbeHQS exercises Algorithm R_Probe_HQS (Fig. 7) on
// class-P inputs; probes/op tracks (8/3)^h.
func BenchmarkFigure7RProbeHQS(b *testing.B) {
	hq, _ := systems.NewHQS(5)
	hard := core.WorstCaseHQS(hq, coloring.Green, nil)
	benchWitnessSearch(b, hq.Size(),
		func(*rand.Rand) *coloring.Coloring { return hard },
		func(o probe.Oracle, rng *rand.Rand) probe.Witness { return core.RProbeHQS(hq, o, rng) })
}

// BenchmarkFigure8IRProbeHQS exercises the improved Algorithm IR_Probe_HQS
// (Fig. 8) on the same inputs; its exact expectation (133.45 at h=5) is
// about 1% below Figure 7's (134.85), so long bench times are needed to
// see the gap above sampling noise — the F8 experiment compares the exact
// values instead.
func BenchmarkFigure8IRProbeHQS(b *testing.B) {
	hq, _ := systems.NewHQS(5)
	hard := core.WorstCaseHQS(hq, coloring.Green, nil)
	benchWitnessSearch(b, hq.Size(),
		func(*rand.Rand) *coloring.Coloring { return hard },
		func(o probe.Oracle, rng *rand.Rand) probe.Witness { return core.IRProbeHQS(hq, o, rng) })
}

// BenchmarkFigure9IRConstant regenerates the Fig. 9 computation: the exact
// expected recursion constant of IR_Probe_HQS at height 2.
func BenchmarkFigure9IRConstant(b *testing.B) {
	hq, _ := systems.NewHQS(2)
	colP := core.WorstCaseHQS(hq, coloring.Green, nil)
	for i := 0; i < b.N; i++ {
		if v := core.ExactIRProbeHQS(hq, colP); v <= 7 || v >= 7.1 {
			b.Fatalf("constant = %v", v)
		}
	}
}

// --- Lemmas ---

// BenchmarkLemma22Evasive regenerates the evasiveness computation: exact
// PC of Maj(9) by minimax DP.
func BenchmarkLemma22Evasive(b *testing.B) {
	m, _ := systems.NewMaj(9)
	for i := 0; i < b.N; i++ {
		if pc, err := strategy.OptimalPC(m); err != nil || pc != 9 {
			b.Fatalf("OptimalPC = %v, %v", pc, err)
		}
	}
}

// BenchmarkLemma24Walk regenerates the grid-walk expectation (exact DP).
func BenchmarkLemma24Walk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if v := walk.ExactExitTime(400, 0.5); v <= 0 {
			b.Fatal("bad exit time")
		}
	}
}

// BenchmarkLemma28Urn regenerates the j-th-red urn experiment.
func BenchmarkLemma28Urn(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	total := 0
	for i := 0; i < b.N; i++ {
		total += urn.SimulateJthRed(5, 20, 2, rng)
	}
	b.ReportMetric(float64(total)/float64(b.N), "draws/op")
}

// BenchmarkLemma29Urn regenerates the both-colors urn experiment.
func BenchmarkLemma29Urn(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	total := 0
	for i := 0; i < b.N; i++ {
		total += urn.SimulateBothColors(2, 30, rng)
	}
	b.ReportMetric(float64(total)/float64(b.N), "draws/op")
}

// --- Propositions and sweeps ---

// BenchmarkProp32MajSweep regenerates the Maj PPC column: the exact
// expectation via the O(N^2) walk DP for n = 1001.
func BenchmarkProp32MajSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if v := core.ExpectedProbeMajIID(1001, 0.3); v <= 0 {
			b.Fatal("bad expectation")
		}
	}
}

// BenchmarkProp36TreeSweep regenerates the Tree exponent measurement: the
// exact expectation recursion out to height 32.
func BenchmarkProp36TreeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if v := core.ExpectedProbeTreeIID(32, 0.3); v <= 0 {
			b.Fatal("bad expectation")
		}
	}
}

// --- Ablation: the paper's strategy vs baselines on the same workload ---

func BenchmarkAblationProbeCW(b *testing.B) {
	tri, _ := systems.NewTriang(10)
	benchWitnessSearch(b, tri.Size(), iidHalf(tri.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.ProbeCW(tri, o) })
}

func BenchmarkAblationSequentialScan(b *testing.B) {
	tri, _ := systems.NewTriang(10)
	benchWitnessSearch(b, tri.Size(), iidHalf(tri.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.SequentialScan(tri, o) })
}

func BenchmarkAblationUniversal(b *testing.B) {
	tri, _ := systems.NewTriang(10)
	benchWitnessSearch(b, tri.Size(), iidHalf(tri.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.Universal(tri, o) })
}

// The greedy heuristic needs the explicit quorum list, so it runs on
// Triang(6) (1237 quorums) rather than the Triang(10) of the other
// ablation rows.
func BenchmarkAblationGreedyQuorum(b *testing.B) {
	tri, _ := systems.NewTriang(6)
	benchWitnessSearch(b, tri.Size(), iidHalf(tri.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.GreedyQuorum(tri, o) })
}

// --- Extensions ---

// BenchmarkExtensionVote exercises the weighted-voting generalization.
func BenchmarkExtensionVote(b *testing.B) {
	weights := make([]int, 51)
	for i := range weights {
		weights[i] = 1 + i%5
	}
	if w := sumInts(weights); w%2 == 0 {
		weights[0]++
	}
	v, _ := systems.NewVote(weights)
	benchWitnessSearch(b, v.Size(), iidHalf(v.Size()),
		func(o probe.Oracle, _ *rand.Rand) probe.Witness { return core.ProbeVote(v, o) })
}

func sumInts(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// --- Mask-native engine vs the legacy map-based DPs (PR 1) ---
//
// Measured on the PR 1 machine (single core, go1.24):
//
//	OptimalPPC Maj(13):    legacy 2.9 s/op   -> mask 0.14 s/op   (~20x)
//	OptimalPPC Triang(5):  legacy 51.2 s/op  -> mask 2.74 s/op   (~19x)
//	OptimalPPC Wheel(18):  legacy n/a (guard at n=16; map would need
//	                       multiple GiB) -> mask 58 s/op single-core
//
// The mask engine wins on three axes: the witness predicate is a bit test
// against a precomputed 2^n-bit table instead of a bitset rebuild plus a
// ContainsQuorum walk, the memo is a dense base-3-indexed slice instead of
// a hash map, and the root branches expand across GOMAXPROCS goroutines
// (a wash on the single-core measurement machine; scales on real cores).

func BenchmarkOptimalPPCMaskMaj13(b *testing.B) {
	m, _ := systems.NewMaj(13)
	for i := 0; i < b.N; i++ {
		if v, err := strategy.OptimalPPC(m, 0.5); err != nil || v <= 0 {
			b.Fatalf("OptimalPPC = %v, %v", v, err)
		}
	}
}

func BenchmarkOptimalPPCLegacyMaj13(b *testing.B) {
	m, _ := systems.NewMaj(13)
	for i := 0; i < b.N; i++ {
		if v, err := strategy.LegacyOptimalPPC(m, 0.5); err != nil || v <= 0 {
			b.Fatalf("LegacyOptimalPPC = %v, %v", v, err)
		}
	}
}

func BenchmarkOptimalPPCMaskTriang5(b *testing.B) {
	tri, _ := systems.NewTriang(5)
	for i := 0; i < b.N; i++ {
		if v, err := strategy.OptimalPPC(tri, 0.5); err != nil || v <= 0 {
			b.Fatalf("OptimalPPC = %v, %v", v, err)
		}
	}
}

func BenchmarkOptimalPPCLegacyTriang5(b *testing.B) {
	if testing.Short() {
		b.Skip("legacy Triang(5) costs ~51s/op")
	}
	tri, _ := systems.NewTriang(5)
	for i := 0; i < b.N; i++ {
		if v, err := strategy.LegacyOptimalPPC(tri, 0.5); err != nil || v <= 0 {
			b.Fatalf("LegacyOptimalPPC = %v, %v", v, err)
		}
	}
}

// BenchmarkOptimalPPCMaskWheel18 proves the raised MaxUniverse: the 3^18
// knowledge-state DP completes (~58s single-core at PR 1; the legacy
// engine was capped at n=16 and its map memo would need several GiB).
func BenchmarkOptimalPPCMaskWheel18(b *testing.B) {
	if testing.Short() {
		b.Skip("3^18-state DP costs ~1 minute/op single-core")
	}
	w, _ := systems.NewWheel(18)
	for i := 0; i < b.N; i++ {
		if v, err := strategy.OptimalPPC(w, 0.3); err != nil || v <= 0 {
			b.Fatalf("OptimalPPC = %v, %v", v, err)
		}
	}
}

// BenchmarkWitnessMask{Word,Bitset} isolate the superset-test primitive
// the DPs hammer: word-level popcount vs bitset materialization plus
// ContainsQuorum (4.8 vs 114 ns/op, ~24x at PR 1, and the word path is
// allocation-free).
func BenchmarkWitnessMaskWord(b *testing.B) {
	m, _ := systems.NewMaj(63)
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.ContainsQuorumMask(uint64(i) * 0x9E3779B97F4A7C15 >> 1) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkWitnessMaskBitset(b *testing.B) {
	m, _ := systems.NewMaj(63)
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mask := uint64(i) * 0x9E3779B97F4A7C15 >> 1
		s := probequorum.SetFromMask(63, mask)
		if m.ContainsQuorum(s) {
			hits++
		}
	}
	_ = hits
}

// --- Parallel Monte Carlo (PR 1) ---
//
// sim.Estimate fans trials across GOMAXPROCS workers with bit-identical
// summaries (each trial derives its PRNG from (seed, index); accumulation
// replays in trial order). On the single-core PR 1 machine the two paths
// measure within noise of each other — the speedup is cores x on real
// hardware; TestEstimateParallelBitIdentical pins the equivalence.

func benchEstimate(b *testing.B, est func(trials int, seed uint64, f func(rng *rand.Rand) float64) stats.Summary) {
	b.Helper()
	m, _ := systems.NewMaj(101)
	for i := 0; i < b.N; i++ {
		s := est(2000, 17, func(rng *rand.Rand) float64 {
			col := coloring.IID(m.Size(), 0.5, rng)
			o := probe.NewOracle(col)
			core.ProbeMaj(m, o)
			return float64(o.Probes())
		})
		if s.Mean <= 0 {
			b.Fatalf("mean = %v", s.Mean)
		}
	}
}

func BenchmarkEstimateParallel(b *testing.B)   { benchEstimate(b, sim.Estimate) }
func BenchmarkEstimateSequential(b *testing.B) { benchEstimate(b, sim.EstimateSeq) }

// BenchmarkBruteForceAvailability{Mask,Coloring} compare the exhaustive
// F_p enumerations: word masks with a per-red-count probability table vs
// per-coloring bitsets (0.42 vs 21.5 ms/op on Maj(17), ~51x at PR 1).
func BenchmarkBruteForceAvailabilityMask(b *testing.B) {
	m, _ := systems.NewMaj(17)
	for i := 0; i < b.N; i++ {
		if f := availability.BruteForce(m, 0.3); f <= 0 {
			b.Fatalf("F_p = %v", f)
		}
	}
}

func BenchmarkBruteForceAvailabilityColoring(b *testing.B) {
	m, _ := systems.NewMaj(17)
	sys := struct{ quorum.System }{m} // hide the mask methods
	for i := 0; i < b.N; i++ {
		if f := availability.BruteForce(sys, 0.3); f <= 0 {
			b.Fatalf("F_p = %v", f)
		}
	}
}

// BenchmarkExtensionLoadBalance exercises the Naor–Wool load balancer.
func BenchmarkExtensionLoadBalance(b *testing.B) {
	w, _ := systems.NewWheel(12)
	for i := 0; i < b.N; i++ {
		if _, _, err := load.Balance(w, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionAvailability exercises the closed-form availability
// computations across the constructions.
func BenchmarkExtensionAvailability(b *testing.B) {
	widths := make([]int, 20)
	widths[0] = 1
	for i := 1; i < 20; i++ {
		widths[i] = i + 1
	}
	for i := 0; i < b.N; i++ {
		_ = availability.Maj(1001, 0.3)
		_ = availability.CW(widths, 0.3)
		_ = availability.Tree(20, 0.3)
		_ = availability.HQS(12, 0.3)
	}
}
