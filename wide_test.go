package probequorum_test

import (
	"context"
	"errors"
	"math/rand/v2"
	"strconv"
	"strings"
	"testing"

	"probequorum"
	"probequorum/internal/coloring"
	"probequorum/internal/probe"
	"probequorum/internal/sim"
)

// smallSpecs maps every registered construction to a representative
// word-sized instance; largeSpecs to a wide-universe one.
var (
	smallSpecs = []string{
		"maj:13", "wheel:12", "cw:1,3,2", "triang:5", "tree:4", "hqs:3",
		"vote:5,3,1,1,1,1,1,1,1", "recmaj:3x3",
	}
	largeSpecs = []string{
		"maj:129", "maj:1025", "wheel:300", "cw:1,5,4,3,7,5,4,3,6,5,4,3,7,5,4,3,6,5,4,3,7,5,4,3",
		"triang:45", "tree:6", "tree:9", "hqs:5", "recmaj:3x6", "recmaj:5x4", largeVoteSpec(201),
	}
)

// largeVoteSpec builds a vote spec over n elements with cycling weights
// and an odd total.
func largeVoteSpec(n int) string {
	weights := make([]int, n)
	total := 0
	for i := range weights {
		weights[i] = 1 + i%5
		total += weights[i]
	}
	if total%2 == 0 {
		weights[0]++
	}
	parts := make([]string, n)
	for i, w := range weights {
		parts[i] = strconv.Itoa(w)
	}
	return "vote:" + strings.Join(parts, ",")
}

// TestWideSpecsCoverRegistry keeps the differential spec lists honest:
// every built-in construction must be registered and appear in both
// lists. (Test-registered ad-hoc constructions are exempt.)
func TestWideSpecsCoverRegistry(t *testing.T) {
	registered := map[string]bool{}
	for _, name := range probequorum.SpecNames() {
		registered[name] = true
	}
	for _, name := range []string{"maj", "wheel", "cw", "triang", "tree", "hqs", "vote", "recmaj"} {
		if !registered[name] {
			t.Errorf("built-in construction %q is not registered", name)
			continue
		}
		for listName, list := range map[string][]string{"small": smallSpecs, "large": largeSpecs} {
			found := false
			for _, s := range list {
				if strings.HasPrefix(s, name+":") {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("construction %q missing from the %s differential specs", name, listName)
			}
		}
	}
}

// TestWideDifferentialRegistry pins, for every registered construction
// with n <= 64, the wide path to the word path on random masks.
func TestWideDifferentialRegistry(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 7))
	for _, s := range smallSpecs {
		t.Run(s, func(t *testing.T) {
			sys := probequorum.MustParse(s)
			ms, err := probequorum.AsMaskSystem(sys)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := probequorum.AsWideMaskSystem(sys)
			if err != nil {
				t.Fatal(err)
			}
			n := sys.Size()
			full := uint64(1)<<uint(n) - 1
			if n == 64 {
				full = ^uint64(0)
			}
			words := make([]uint64, 1)
			for i := 0; i < 2048; i++ {
				mask := rng.Uint64() & full
				words[0] = mask
				if got, want := ws.ContainsQuorumWords(words), ms.ContainsQuorumMask(mask); got != want {
					t.Fatalf("mask %#x: wide=%v word=%v", mask, got, want)
				}
			}
		})
	}
}

// bitsetEstimate reproduces the bitset-oracle Monte Carlo path (the
// pre-wide estimate engine) for cross-pinning: per-worker coloring and
// oracle buffers, FindWitness per trial, probe count as the trial value.
func bitsetEstimate(t *testing.T, sys probequorum.System, p float64, trials int, seed uint64) (mean, halfCI float64) {
	t.Helper()
	n := sys.Size()
	type buffers struct {
		col *coloring.Coloring
		o   *probe.ColoringOracle
	}
	s := sim.EstimateWith(trials, seed,
		func() *buffers {
			col := coloring.New(n)
			return &buffers{col: col, o: probe.NewOracle(col)}
		},
		func(rng *rand.Rand, b *buffers) float64 {
			coloring.IIDInto(b.col, p, rng)
			b.o.Reset()
			w, err := probequorum.FindWitness(sys, b.o)
			if err != nil {
				t.Error(err)
				return 0
			}
			_ = w
			return float64(b.o.Probes())
		})
	lo, hi := s.CI95()
	return s.Mean, (hi - lo) / 2
}

// TestWideEstimateBitIdentical pins the wide Monte Carlo estimates to the
// bitset word-path estimates for the same (trials, seed), on every
// registered construction at both word and wide sizes.
func TestWideEstimateBitIdentical(t *testing.T) {
	const trials, seed = 800, 424242
	specs := append(append([]string{}, smallSpecs...), "maj:129", "wheel:300", "tree:6", "hqs:5", "recmaj:3x6", "triang:45")
	for _, s := range specs {
		t.Run(s, func(t *testing.T) {
			sys := probequorum.MustParse(s)
			for _, p := range []float64{0.1, 0.5} {
				mean, half, err := probequorum.EstimateAverageProbes(sys, p, trials, seed)
				if err != nil {
					t.Fatal(err)
				}
				wantMean, wantHalf := bitsetEstimate(t, sys, p, trials, seed)
				if mean != wantMean || half != wantHalf {
					t.Fatalf("p=%v: wide estimate (%v, %v) != bitset estimate (%v, %v)",
						p, mean, half, wantMean, wantHalf)
				}
			}
		})
	}
}

// TestEvalLargeSpecs is the acceptance path: estimate and availability
// must succeed for every wide spec through the Query API.
func TestEvalLargeSpecs(t *testing.T) {
	eval := probequorum.NewEvaluator(probequorum.WithTrials(300))
	queries := probequorum.SpecQueries(largeSpecs,
		[]probequorum.Measure{probequorum.MeasureEstimate, probequorum.MeasureAvailability, probequorum.MeasureExpected},
		[]float64{0.2, 0.5})
	results, err := eval.DoBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Error != "" {
			t.Errorf("%s: %s", largeSpecs[i], r.Error)
			continue
		}
		for _, pt := range r.Points {
			if pt.Estimate == nil || pt.Availability == nil || pt.Expected == nil {
				t.Errorf("%s at p=%v: missing measures", largeSpecs[i], pt.P)
				continue
			}
			if pt.Estimate.Mean <= 0 || pt.Estimate.Mean > float64(r.N) {
				t.Errorf("%s at p=%v: estimate %v out of (0, n]", largeSpecs[i], pt.P, pt.Estimate.Mean)
			}
			if *pt.Availability < 0 || *pt.Availability > 1 {
				t.Errorf("%s at p=%v: availability %v out of [0,1]", largeSpecs[i], pt.P, *pt.Availability)
			}
		}
	}
}

// TestBoundErrorsActionable checks the error-reporting satellite: exact
// measures beyond their bounds answer a typed BoundError naming the
// bound and the measures still available, and over-bound specs are
// refused at parse time.
func TestBoundErrorsActionable(t *testing.T) {
	eval := probequorum.NewEvaluator()
	_, err := eval.Do(context.Background(), probequorum.Query{
		Spec:     "maj:1025",
		Measures: []probequorum.Measure{probequorum.MeasurePC},
	})
	if err == nil {
		t.Fatal("exact pc at n=1025 succeeded")
	}
	var be *probequorum.BoundError
	if !errors.As(err, &be) {
		t.Fatalf("want BoundError, got %T: %v", err, err)
	}
	if be.N != 1025 {
		t.Errorf("BoundError.N = %d, want 1025", be.N)
	}
	joined := strings.Join(be.Available, ",")
	for _, m := range []string{"estimate", "availability", "expected"} {
		if !strings.Contains(joined, m) {
			t.Errorf("BoundError.Available %v missing %q", be.Available, m)
		}
	}
	if !strings.Contains(err.Error(), "estimate") {
		t.Errorf("error text %q does not advertise the estimate fallback", err)
	}

	// PPC beyond the DP bound but inside the wide engine.
	_, err = eval.Do(context.Background(), probequorum.Query{
		Spec:     "maj:25",
		Measures: []probequorum.Measure{probequorum.MeasurePPC},
		Ps:       []float64{0.5},
	})
	if !errors.As(err, &be) {
		t.Fatalf("ppc at n=25: want BoundError, got %v", err)
	}

	// Specs beyond the wide engine are refused at parse time.
	_, err = probequorum.Parse("maj:4097")
	if !errors.As(err, &be) || be.Max != 4096 {
		t.Fatalf("Parse(maj:4097): want BoundError at 4096, got %v", err)
	}
}

// TestAvailabilityLargeCustomSystem: a custom system with neither a
// closed form nor a table-sized universe has no exact availability. The
// ctx path answers the typed bound error; the error-less façade form
// panics with it rather than silently returning 0.
func TestAvailabilityLargeCustomSystem(t *testing.T) {
	big, err := probequorum.NewExplicit("big", 30, []*probequorum.Set{
		probequorum.SetOf(30, 0, 1),
		probequorum.SetOf(30, 0, 2),
		probequorum.SetOf(30, 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	eval := probequorum.NewEvaluator()
	_, err = eval.AvailabilityCtx(context.Background(), big, 0.5)
	var be *probequorum.BoundError
	if !errors.As(err, &be) {
		t.Fatalf("AvailabilityCtx: want BoundError, got %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Availability returned instead of panicking for an impossible exact measure")
		}
	}()
	probequorum.Availability(big, 0.5)
}
