package probequorum_test

// Tests for the streaming evaluation API: the Cell protocol, the
// determinism contract (cell sequences identical across parallelism),
// Do/DoBatch as folds over the streams, adaptive-precision stopping
// under Query.Tolerance, and — load-bearing for the probeserved
// /v1/stream endpoint — cancellation mid-stream leaving every session
// cache as if the query never ran. The cancellation and determinism
// tests run under -race in CI.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"probequorum"
)

// collectCells drains a stream into a cell slice, failing the test on a
// stream error.
func collectCells(t *testing.T, cells func(func(probequorum.Cell, error) bool)) []probequorum.Cell {
	t.Helper()
	var out []probequorum.Cell
	for c, err := range cells {
		if err != nil {
			t.Fatalf("stream error after %d cells: %v", len(out), err)
		}
		out = append(out, c)
	}
	return out
}

// TestStreamCellOrderDeterministic pins the determinism contract: the
// exact cell sequence of a batch stream — headers, values, estimate
// progress cells included — is byte-identical across parallelism
// settings, because emission follows the canonical (query, measure,
// point) order and every estimate checkpoint is a fixed trial prefix.
func TestStreamCellOrderDeterministic(t *testing.T) {
	queries := probequorum.SpecQueries(
		[]string{"maj:9", "wheel:8", "triang:4", "cw:1,3,2"},
		[]probequorum.Measure{probequorum.MeasurePC, probequorum.MeasurePPC, probequorum.MeasureAvailability, probequorum.MeasureEstimate},
		[]float64{0.2, 0.5},
	)
	for i := range queries {
		queries[i].Trials = 2000
		queries[i].Seed = 7
	}
	encode := func(cs []probequorum.Cell) string {
		var b strings.Builder
		for _, c := range cs {
			data, err := json.Marshal(c)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(data)
			b.WriteByte('\n')
		}
		return b.String()
	}
	var want string
	for _, par := range []int{1, 2, 8} {
		eval := probequorum.NewEvaluator(probequorum.WithParallelism(par))
		got := encode(collectCells(t, eval.StreamBatch(context.Background(), queries)))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("parallelism %d produced a different cell sequence", par)
		}
	}
	// The sequence is grouped by query index in query order.
	eval := probequorum.NewEvaluator()
	last := -1
	for _, c := range collectCells(t, eval.StreamBatch(context.Background(), queries)) {
		if c.Query < last {
			t.Fatalf("cell for query %d after query %d: emission not in query order", c.Query, last)
		}
		last = c.Query
	}
}

// TestStreamFoldMatchesDoBatch pins the single-evaluation-path
// guarantee at the façade: folding StreamBatch cells reproduces DoBatch
// bit for bit (DoBatch *is* that fold, so this guards the fold against
// drift), and a per-query failure becomes an error cell that folds into
// Result.Error without disturbing batch mates.
func TestStreamFoldMatchesDoBatch(t *testing.T) {
	queries := []probequorum.Query{
		{Spec: "maj:9", Measures: []probequorum.Measure{probequorum.MeasurePC, probequorum.MeasurePPC, probequorum.MeasureTree}, Ps: []float64{0.3, 0.5}},
		{Spec: "nope:3", Measures: []probequorum.Measure{probequorum.MeasurePC}},
		{Spec: "wheel:8", Measures: []probequorum.Measure{probequorum.MeasureEstimate, probequorum.MeasureExpected}, Ps: []float64{0.4}, Trials: 1000, Seed: 5},
	}
	folded, err := probequorum.FoldCells(probequorum.NewEvaluator().StreamBatch(context.Background(), queries), len(queries))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := probequorum.NewEvaluator().DoBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		gotJSON, _ := json.Marshal(folded[i])
		wantJSON, _ := json.Marshal(direct[i])
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("query %d: fold %s != DoBatch %s", i, gotJSON, wantJSON)
		}
	}
	if folded[1].Error == "" || !strings.Contains(folded[1].Error, "unknown construction") {
		t.Errorf("failed query folded to %+v, want unknown-construction error", folded[1])
	}
}

// TestStreamEstimateProgress checks the incremental contract of the
// estimate measure: progress cells stream before the final one, with
// monotonically increasing trial counts, each a prefix of the same
// deterministic trial sequence, and the final Done cell matching the
// fixed-trial façade estimate exactly.
func TestStreamEstimateProgress(t *testing.T) {
	const trials, seed = 4096, 7
	eval := probequorum.NewEvaluator()
	cells := collectCells(t, eval.Stream(context.Background(), probequorum.Query{
		Spec:     "maj:63",
		Measures: []probequorum.Measure{probequorum.MeasureEstimate},
		Ps:       []float64{0.5},
		Trials:   trials,
		Seed:     seed,
	}))
	if cells[0].Measure != "" || cells[0].Name != "Maj(63)" || cells[0].N != 63 || cells[0].Trials != trials || cells[0].Seed != seed {
		t.Fatalf("header cell = %+v", cells[0])
	}
	var progress []probequorum.Cell
	var final *probequorum.Cell
	for i := range cells[1:] {
		c := cells[1+i]
		if c.Measure != probequorum.MeasureEstimate || c.P == nil || *c.P != 0.5 {
			t.Fatalf("unexpected cell %+v", c)
		}
		if c.Done {
			final = &c
		} else {
			progress = append(progress, c)
		}
	}
	if len(progress) < 3 {
		t.Fatalf("only %d progress cells for %d trials, want several", len(progress), trials)
	}
	lastTrials := 0
	for _, c := range progress {
		if c.Trials <= lastTrials {
			t.Errorf("progress trials not increasing: %d after %d", c.Trials, lastTrials)
		}
		lastTrials = c.Trials
		if c.HalfCI <= 0 || c.StdErr <= 0 {
			t.Errorf("progress cell without CI: %+v", c)
		}
		// Each progress value is the exact prefix estimate.
		sys := probequorum.MustParse("maj:63")
		mean, half, err := probequorum.EstimateAverageProbes(sys, 0.5, c.Trials, seed)
		if err != nil {
			t.Fatal(err)
		}
		if c.Value != mean || c.HalfCI != half {
			t.Errorf("progress at %d trials (%v, %v) != prefix estimate (%v, %v)", c.Trials, c.Value, c.HalfCI, mean, half)
		}
	}
	if final == nil {
		t.Fatal("no final estimate cell")
	}
	mean, half, err := probequorum.EstimateAverageProbes(probequorum.MustParse("maj:63"), 0.5, trials, seed)
	if err != nil {
		t.Fatal(err)
	}
	if final.Value != mean || final.HalfCI != half || final.Trials != trials {
		t.Errorf("final cell (%v, %v, %d) != façade (%v, %v, %d)", final.Value, final.HalfCI, final.Trials, mean, half, trials)
	}
}

// adaptiveSpecs is one spec per registered construction at two scales:
// one-word universes around n=64 and wide universes around n=1025,
// exactly the adaptive-stopping matrix the streaming API serves.
var adaptiveSpecs = map[string][]string{
	"n~64": {
		"maj:63", "wheel:64", "cw:1,3,5,7,9,11,13,15", "tree:5", "hqs:4",
		"vote:" + onesVote(32, 63), "recmaj:3x4", "triang:10",
	},
	"n~1025": {
		"maj:1025", "wheel:1025", "cw:" + longWall(45), "tree:9", "hqs:6",
		"vote:" + onesVote(512, 1023), "recmaj:3x6", "triang:45",
	},
}

// onesVote builds a vote spec of hub weight plus n unit weights.
func onesVote(hub, n int) string {
	parts := make([]string, n+1)
	parts[0] = fmt.Sprint(hub)
	for i := 1; i <= n; i++ {
		parts[i] = "1"
	}
	return strings.Join(parts, ",")
}

// longWall builds a crumbling wall of k rows with widths 1,3,5,...
func longWall(k int) string {
	parts := make([]string, k)
	for i := range parts {
		parts[i] = fmt.Sprint(2*i + 1)
	}
	return strings.Join(parts, ",")
}

// TestAdaptiveAgreesWithFixed is the adaptive-stopping correctness gate:
// for every construction at both scales, the tolerance-stopped estimate
// agrees with the fixed-trial estimate within the sum of their reported
// 95% confidence half-intervals, stops on a chunk boundary at or past
// the minimum prefix, and achieves its tolerance when it stops before
// the budget.
func TestAdaptiveAgreesWithFixed(t *testing.T) {
	const fixedTrials, seed = 2000, 7
	eval := probequorum.NewEvaluator()
	for scale, specs := range adaptiveSpecs {
		for _, spec := range specs {
			sys := probequorum.MustParse(spec)
			mean, half, err := probequorum.EstimateAverageProbes(sys, 0.5, fixedTrials, seed)
			if err != nil {
				t.Fatalf("%s %s: fixed estimate: %v", scale, spec, err)
			}
			// Target a precision the budget comfortably reaches: twice
			// the fixed run's achieved half-interval.
			tol := 2 * half
			res, err := eval.Do(context.Background(), probequorum.Query{
				Spec:      spec,
				Measures:  []probequorum.Measure{probequorum.MeasureEstimate},
				Ps:        []float64{0.5},
				Trials:    fixedTrials,
				Seed:      seed,
				Tolerance: tol,
			})
			if err != nil {
				t.Fatalf("%s %s: adaptive query: %v", scale, spec, err)
			}
			est := res.Points[0].Estimate
			if est.Trials < 256 || est.Trials > fixedTrials {
				t.Errorf("%s %s: stopped at %d trials, want within [256, %d]", scale, spec, est.Trials, fixedTrials)
			}
			if est.Trials%64 != 0 && est.Trials != fixedTrials {
				t.Errorf("%s %s: stop point %d not a chunk boundary", scale, spec, est.Trials)
			}
			if est.Trials < fixedTrials && est.HalfCI > tol {
				t.Errorf("%s %s: stopped early at %d trials with half-CI %v > tolerance %v", scale, spec, est.Trials, est.HalfCI, tol)
			}
			if diff := est.Mean - mean; diff > est.HalfCI+half || -diff > est.HalfCI+half {
				t.Errorf("%s %s: adaptive %v±%v vs fixed %v±%v disagree beyond CI", scale, spec, est.Mean, est.HalfCI, mean, half)
			}
		}
	}
}

// TestAdaptiveStopsBeforeBudget is the acceptance-criteria shape: a
// tolerance-driven estimate with no explicit trial count runs against
// the MaxQueryTrials budget and stops far before it.
func TestAdaptiveStopsBeforeBudget(t *testing.T) {
	eval := probequorum.NewEvaluator()
	res, err := eval.Do(context.Background(), probequorum.Query{
		Spec:      "maj:1025",
		Measures:  []probequorum.Measure{probequorum.MeasureEstimate},
		Ps:        []float64{0.5},
		Seed:      11,
		Tolerance: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != probequorum.MaxQueryTrials {
		t.Errorf("adaptive budget = %d, want MaxQueryTrials", res.Trials)
	}
	est := res.Points[0].Estimate
	if est.Trials >= 10000 {
		t.Errorf("tolerance 2.0 consumed %d trials; expected to stop within a few hundred", est.Trials)
	}
	if est.HalfCI > 2.0 {
		t.Errorf("achieved half-CI %v exceeds tolerance 2.0", est.HalfCI)
	}
	// The stopping point is deterministic: a second session stops at the
	// same trial count with the same mean.
	again, err := probequorum.NewEvaluator(probequorum.WithParallelism(1)).Do(context.Background(), probequorum.Query{
		Spec:      "maj:1025",
		Measures:  []probequorum.Measure{probequorum.MeasureEstimate},
		Ps:        []float64{0.5},
		Seed:      11,
		Tolerance: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	est2 := again.Points[0].Estimate
	if est2.Trials != est.Trials || est2.Mean != est.Mean || est2.HalfCI != est.HalfCI {
		t.Errorf("adaptive stop not deterministic across parallelism: %+v vs %+v", est, est2)
	}
}

// fixedGoldens pins the estimate values of the pre-streaming engine
// (PR 4): the chunked in-order accumulation behind the streaming API
// must reproduce them bit for bit whenever Tolerance <= 0.
var fixedGoldens = []struct {
	spec   string
	p      float64
	trials int
	seed   uint64
	mean   float64
	half   float64
}{
	{"maj:63", 0.5, 2000, 7, 57.79199999999994, 0.18277876727125886},
	{"maj:1025", 0.5, 400, 11, 1000.6375000000003, 1.7393331187744252},
	{"wheel:64", 0.3, 2000, 7, 3.041499999999999, 0.08132669158206918},
	{"tree:5", 0.5, 2000, 7, 21.151500000000016, 0.4187750991047743},
	{"cw:1,3,5,7,9,11,13,15", 0.5, 2000, 7, 14.74150000000002, 0.15180978877932816},
	{"hqs:3", 0.5, 2000, 7, 15.613000000000001, 0.17228717769036983},
	{"recmaj:3x4", 0.5, 2000, 7, 39.40849999999998, 0.43196690666925264},
}

// TestToleranceZeroBitIdenticalToPR4Goldens pins fixed-trial behavior
// against literal values recorded from the PR 4 engine: Tolerance <= 0
// must answer exactly what the pre-streaming evaluator answered.
func TestToleranceZeroBitIdenticalToPR4Goldens(t *testing.T) {
	eval := probequorum.NewEvaluator()
	for _, g := range fixedGoldens {
		for _, tol := range []float64{0, -1} {
			res, err := eval.Do(context.Background(), probequorum.Query{
				Spec:      g.spec,
				Measures:  []probequorum.Measure{probequorum.MeasureEstimate},
				Ps:        []float64{g.p},
				Trials:    g.trials,
				Seed:      g.seed,
				Tolerance: tol,
			})
			if err != nil {
				t.Fatalf("%s: %v", g.spec, err)
			}
			est := res.Points[0].Estimate
			if est.Mean != g.mean || est.HalfCI != g.half {
				t.Errorf("%s tol=%v: (%v, %v) != PR 4 golden (%v, %v)", g.spec, tol, est.Mean, est.HalfCI, g.mean, g.half)
			}
			if est.Trials != g.trials || res.Trials != g.trials {
				t.Errorf("%s tol=%v: consumed %d/%d trials, want the full %d", g.spec, tol, est.Trials, res.Trials, g.trials)
			}
		}
	}
}

// TestStreamCancelMidStream cancels a consumer mid-iteration and
// verifies the streaming path honors the same cache-consistency contract
// as Do: the aborted session afterwards answers bit-identically to a
// fresh one, as if the cancelled stream never ran.
func TestStreamCancelMidStream(t *testing.T) {
	eval := probequorum.NewEvaluator()
	ps := make([]float64, 240)
	for i := range ps {
		ps[i] = float64(i+1) / float64(len(ps)+1)
	}
	queries := []probequorum.Query{
		{Spec: "maj:13", Measures: []probequorum.Measure{probequorum.MeasurePPC}, Ps: ps},
		{Spec: "triang:5", Measures: []probequorum.Measure{probequorum.MeasurePPC}, Ps: ps},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var streamErr error
	cellCount := 0
	for _, err := range eval.StreamBatch(ctx, queries) {
		if err != nil {
			streamErr = err
			break
		}
		cellCount++
	}
	if !errors.Is(streamErr, context.Canceled) {
		t.Fatalf("cancelled stream: err = %v after %d cells, want context.Canceled", streamErr, cellCount)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancelled stream took %v to end; not prompt", elapsed)
	}

	fresh := probequorum.NewEvaluator()
	check := probequorum.Query{
		Spec:     "maj:13",
		Measures: []probequorum.Measure{probequorum.MeasurePPC, probequorum.MeasureAvailability},
		Ps:       []float64{ps[0]},
	}
	got, err := eval.Do(context.Background(), check)
	if err != nil {
		t.Fatalf("post-cancel Do on the aborted session: %v", err)
	}
	want, err := fresh.Do(context.Background(), check)
	if err != nil {
		t.Fatalf("post-cancel Do on a fresh session: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("aborted session diverged from fresh session:\n%s\n%s", gotJSON, wantJSON)
	}
}

// TestStreamConsumerBreak stops consuming after the first cell; the
// producers must unwind without leaking goroutines or poisoning caches,
// and a later query on the same session must evaluate normally.
func TestStreamConsumerBreak(t *testing.T) {
	eval := probequorum.NewEvaluator()
	queries := probequorum.SpecQueries(
		[]string{"maj:11", "triang:4", "wheel:10"},
		[]probequorum.Measure{probequorum.MeasurePC, probequorum.MeasurePPC},
		[]float64{0.2, 0.5},
	)
	seen := 0
	for c, err := range eval.StreamBatch(context.Background(), queries) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		_ = c
		seen++
		break
	}
	if seen != 1 {
		t.Fatalf("consumed %d cells, want 1", seen)
	}
	res, err := eval.Do(context.Background(), probequorum.Query{
		Spec: "maj:11", Measures: []probequorum.Measure{probequorum.MeasurePC},
	})
	if err != nil || *res.PC != 11 {
		t.Errorf("session unusable after consumer break: res=%+v err=%v", res, err)
	}
}

// TestStreamPreCancelled mirrors TestDoBatchPreCancelled for streams.
func TestStreamPreCancelled(t *testing.T) {
	eval := probequorum.NewEvaluator()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var got error
	for _, err := range eval.StreamBatch(ctx, []probequorum.Query{
		{Spec: "maj:5", Measures: []probequorum.Measure{probequorum.MeasurePC}},
	}) {
		got = err
	}
	if !errors.Is(got, context.Canceled) {
		t.Errorf("pre-cancelled stream yielded err %v, want context.Canceled", got)
	}
}

// TestStreamEstimateCancellation aborts an adaptive estimate mid-loop
// through the streaming path and checks the session estimates normally
// afterwards (no cache poisoning from the aborted trial loop).
func TestStreamEstimateCancellation(t *testing.T) {
	eval := probequorum.NewEvaluator()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	var streamErr error
	for _, err := range eval.Stream(ctx, probequorum.Query{
		Spec:      "maj:101",
		Measures:  []probequorum.Measure{probequorum.MeasureEstimate},
		Ps:        []float64{0.5},
		Tolerance: 1e-9, // unreachable: runs against the full MaxQueryTrials budget
		Seed:      3,
	}) {
		if err != nil {
			streamErr = err
		}
	}
	if !errors.Is(streamErr, context.Canceled) {
		t.Fatalf("stream err = %v, want context.Canceled", streamErr)
	}
	res, err := eval.Do(context.Background(), probequorum.Query{
		Spec:     "maj:101",
		Measures: []probequorum.Measure{probequorum.MeasureEstimate},
		Ps:       []float64{0.5},
		Trials:   2000,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean, half, err := probequorum.EstimateAverageProbes(probequorum.MustParse("maj:101"), 0.5, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est := res.Point(0.5).Estimate; est.Mean != mean || est.HalfCI != half {
		t.Errorf("post-cancel estimate %+v, façade (%v, %v)", est, mean, half)
	}
}
