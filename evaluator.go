package probequorum

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"reflect"
	"sync"

	"probequorum/internal/availability"
	"probequorum/internal/coloring"
	"probequorum/internal/probe"
	"probequorum/internal/quorum"
	"probequorum/internal/sim"
	"probequorum/internal/strategy"
)

// evaluatorMaxSystems bounds the number of systems an Evaluator caches;
// beyond it the oldest entry is evicted. A WitnessTable holds 2^n bits,
// so the bound keeps long-lived sessions serving many ad-hoc systems from
// accumulating tables without limit.
const evaluatorMaxSystems = 64

// Evaluator is a measurement session: it memoizes per-system derived
// artifacts — the word-level mask view, the dense WitnessTable, the
// minimal quorum masks and the availability failure-count polynomial —
// so repeated measures on the same system hit a cache instead of
// recomputing, which is the serving pattern the library is grown for.
// Exact measure results (ProbeComplexity, AverageProbeComplexity) are
// memoized as well.
//
// An Evaluator is safe for concurrent use. Systems are cached by
// interface identity, so callers should reuse the same System value
// across calls; systems of non-comparable dynamic types are evaluated
// correctly but never cached.
type Evaluator struct {
	trials      int
	seed        uint64
	parallelism int

	mu      sync.Mutex
	entries map[System]*evalEntry
	order   []System // insertion order, for eviction
}

// evalEntry is the per-system cache. Its mutex serializes the (expensive)
// artifact builds; the Evaluator lock is never held while building.
type evalEntry struct {
	mu sync.Mutex

	mask    MaskSystem
	maskErr error
	maskOK  bool

	table    *quorum.WitnessTable
	tableErr error
	tableOK  bool

	quorumMasks []uint64

	// failCounts[g] is the number of g-element green sets containing no
	// quorum: the availability polynomial F_p = sum_g failCounts[g] q^g
	// p^(n-g).
	failCounts []float64

	pc    int
	pcErr error
	pcOK  bool

	ppc map[float64]float64
}

// EvaluatorOption configures an Evaluator.
type EvaluatorOption func(*Evaluator)

// WithTrials sets the Monte Carlo trial count used by
// EstimateAverageProbes (default 10000).
func WithTrials(trials int) EvaluatorOption {
	return func(e *Evaluator) { e.trials = trials }
}

// WithSeed sets the Monte Carlo PRNG seed (default 1). Estimates are
// reproducible for a fixed (trials, seed), independent of parallelism.
func WithSeed(seed uint64) EvaluatorOption {
	return func(e *Evaluator) { e.seed = seed }
}

// WithParallelism caps the worker goroutines of Monte Carlo estimation
// (default 0: GOMAXPROCS). Results are bit-identical for every setting.
func WithParallelism(workers int) EvaluatorOption {
	return func(e *Evaluator) { e.parallelism = workers }
}

// NewEvaluator returns a measurement session with the given options.
func NewEvaluator(opts ...EvaluatorOption) *Evaluator {
	e := &Evaluator{trials: 10000, seed: 1, entries: map[System]*evalEntry{}}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// defaultEvaluator backs the package-level measure functions, so plain
// façade calls share one cache per process.
var defaultEvaluator = NewEvaluator()

// entry returns the per-system cache, creating (and, over capacity,
// evicting) as needed. Systems of non-comparable dynamic types cannot be
// map keys; they get a throwaway entry.
func (e *Evaluator) entry(sys System) *evalEntry {
	if sys == nil || !reflect.TypeOf(sys).Comparable() {
		return &evalEntry{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.entries[sys]; ok {
		return ent
	}
	if len(e.order) >= evaluatorMaxSystems {
		oldest := e.order[0]
		e.order = e.order[1:]
		delete(e.entries, oldest)
	}
	ent := &evalEntry{}
	e.entries[sys] = ent
	e.order = append(e.order, sys)
	return ent
}

// MaskView returns the cached word-level view of the system (the system
// itself when it implements MaskSystem natively, a cached-enumeration
// adapter otherwise).
func (e *Evaluator) MaskView(sys System) (MaskSystem, error) {
	ent := e.entry(sys)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	return ent.maskView(sys)
}

func (ent *evalEntry) maskView(sys System) (MaskSystem, error) {
	if !ent.maskOK {
		ent.mask, ent.maskErr = quorum.Masked(sys)
		ent.maskOK = true
	}
	return ent.mask, ent.maskErr
}

// WitnessTable returns the cached dense characteristic-function table of
// the system (n <= 26).
func (e *Evaluator) WitnessTable(sys System) (*quorum.WitnessTable, error) {
	ent := e.entry(sys)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	return ent.witnessTable(sys)
}

func (ent *evalEntry) witnessTable(sys System) (*quorum.WitnessTable, error) {
	if !ent.tableOK {
		ent.table, ent.tableErr = quorum.BuildWitnessTable(sys)
		ent.tableOK = true
	}
	return ent.table, ent.tableErr
}

// QuorumMasks returns the cached minimal quorum masks of the system.
func (e *Evaluator) QuorumMasks(sys System) ([]uint64, error) {
	ent := e.entry(sys)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.quorumMasks == nil {
		ms, err := ent.maskView(sys)
		if err != nil {
			return nil, err
		}
		ent.quorumMasks = ms.QuorumMasks()
	}
	out := make([]uint64, len(ent.quorumMasks))
	copy(out, ent.quorumMasks)
	return out, nil
}

// Availability returns F_p(S). Systems with the ExactAvailability
// capability answer from their closed form; for others the session
// derives an availability polynomial from the witness table once — one
// coefficient per green count — and every later p is a Horner-style
// O(n) evaluation instead of a fresh 2^n enumeration.
func (e *Evaluator) Availability(sys System, p float64) float64 {
	if ea, ok := sys.(ExactAvailability); ok {
		return ea.AvailabilityIID(p)
	}
	ent := e.entry(sys)
	ent.mu.Lock()
	counts := ent.failCounts
	if counts == nil {
		if table, err := ent.witnessTable(sys); err == nil {
			counts = failCountsOf(table)
			ent.failCounts = counts
		}
	}
	ent.mu.Unlock()
	if counts == nil {
		// No table (universe too large): fall back to the uncached path.
		return availability.Of(sys, p)
	}
	n := sys.Size()
	q := 1 - p
	total := 0.0
	for g := 0; g <= n; g++ {
		if counts[g] != 0 {
			total += counts[g] * math.Pow(q, float64(g)) * math.Pow(p, float64(n-g))
		}
	}
	if total < 0 {
		return 0
	}
	if total > 1 {
		return 1
	}
	return total
}

// failCountsOf tallies, per green count, the subsets without a quorum.
func failCountsOf(table *quorum.WitnessTable) []float64 {
	n := table.Size()
	counts := make([]float64, n+1)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		if !table.Contains(mask) {
			counts[bits.OnesCount64(mask)]++
		}
	}
	return counts
}

// ExpectedProbes returns the exact expected probe count of the system's
// deterministic strategy under IID(p) failures, via the ExactExpectation
// capability.
func (e *Evaluator) ExpectedProbes(sys System, p float64) (float64, error) {
	if ee, ok := sys.(ExactExpectation); ok {
		return ee.ExpectedProbesIID(p), nil
	}
	return 0, fmt.Errorf("probequorum: no closed-form expected probes for %s (implement ExactExpectation)", sys.Name())
}

// ProbeComplexity returns the exact worst-case probe complexity PC(S),
// memoized and sharing the session's witness table.
func (e *Evaluator) ProbeComplexity(sys System) (int, error) {
	ent := e.entry(sys)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if !ent.pcOK {
		table, err := ent.witnessTable(sys)
		if err != nil {
			return 0, err
		}
		ent.pc, ent.pcErr = strategy.OptimalPCWithTable(sys, table)
		ent.pcOK = true
	}
	return ent.pc, ent.pcErr
}

// AverageProbeComplexity returns the exact probabilistic probe complexity
// PPC_p(S), memoized per (system, p) and sharing the session's witness
// table across distinct p.
func (e *Evaluator) AverageProbeComplexity(sys System, p float64) (float64, error) {
	ent := e.entry(sys)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if v, ok := ent.ppc[p]; ok {
		return v, nil
	}
	table, err := ent.witnessTable(sys)
	if err != nil {
		return 0, err
	}
	v, err := strategy.OptimalPPCWithTable(sys, table, p)
	if err != nil {
		return 0, err
	}
	if ent.ppc == nil {
		ent.ppc = map[float64]float64{}
	}
	ent.ppc[p] = v
	return v, nil
}

// OptimalStrategyTree materializes a worst-case-optimal probe strategy
// tree, sharing the session's witness table.
func (e *Evaluator) OptimalStrategyTree(sys System) (*StrategyNode, error) {
	ent := e.entry(sys)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	table, err := ent.witnessTable(sys)
	if err != nil {
		return nil, err
	}
	return strategy.BuildOptimalPCWithTable(sys, table)
}

// EstimateAverageProbes estimates by simulation the average probes of the
// system's FindWitness strategy under IID(p) failures with the session's
// trials, seed and parallelism, returning the mean and the 95% confidence
// half-interval. The summary is bit-identical across parallelism
// settings.
func (e *Evaluator) EstimateAverageProbes(sys System, p float64) (mean, halfCI float64, err error) {
	if _, err := FindWitness(sys, NewOracle(AllGreen(sys.Size()))); err != nil {
		return 0, 0, err
	}
	type buffers struct {
		col *coloring.Coloring
		o   *probe.ColoringOracle
	}
	s := sim.EstimateWithWorkers(e.trials, e.seed, e.parallelism,
		func() *buffers {
			col := coloring.New(sys.Size())
			return &buffers{col: col, o: probe.NewOracle(col)}
		},
		func(rng *rand.Rand, b *buffers) float64 {
			coloring.IIDInto(b.col, p, rng)
			b.o.Reset()
			if _, err := FindWitness(sys, b.o); err != nil {
				panic(err) // unreachable: dispatch validated above
			}
			return float64(b.o.Probes())
		})
	lo, hi := s.CI95()
	return s.Mean, (hi - lo) / 2, nil
}
