package probequorum

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"reflect"
	"strconv"
	"strings"
	"sync"

	"probequorum/internal/approx"
	"probequorum/internal/bitset"
	"probequorum/internal/coloring"
	"probequorum/internal/des"
	"probequorum/internal/probe"
	"probequorum/internal/quorum"
	"probequorum/internal/rw"
	"probequorum/internal/sim"
	"probequorum/internal/spec"
	"probequorum/internal/stats"
	"probequorum/internal/store"
	"probequorum/internal/strategy"
)

// evaluatorMaxSystems bounds the number of systems an Evaluator caches;
// beyond it the oldest entry is evicted. A WitnessTable holds 2^n bits,
// so the bound keeps long-lived sessions serving many ad-hoc systems from
// accumulating tables without limit.
const evaluatorMaxSystems = 64

// Evaluator is a measurement session: it memoizes per-system derived
// artifacts — the word-level mask view, the dense WitnessTable, the
// minimal quorum masks and the availability failure-count polynomial —
// so repeated measures on the same system hit a cache instead of
// recomputing, which is the serving pattern the library is grown for.
// Exact measure results (ProbeComplexity, AverageProbeComplexity) are
// memoized as well.
//
// An Evaluator is safe for concurrent use. Systems are cached by
// interface identity, so callers should reuse the same System value
// across calls; systems of non-comparable dynamic types are evaluated
// correctly but never cached.
type Evaluator struct {
	trials      int
	seed        uint64
	parallelism int

	mu      sync.Mutex
	entries map[System]*evalEntry
	order   []System // insertion order, for eviction

	// specs maps canonical spec strings to their built System values, so
	// Queries naming the same construction — across one batch or across
	// requests of a long-lived server — share one artifact cache entry.
	specs     map[string]System
	specOrder []string // insertion order, for eviction

	// statsMu guards the single-flight accounting (see Stats).
	statsMu       sync.Mutex
	buildCount    map[string]uint64
	coalesceCount map[string]uint64
	hitCount      map[string]uint64
	missCount     map[string]uint64

	// artifacts is the persistent on-disk tier below the session memos
	// (nil: memory only) and near the approximate-answer cache (nil:
	// every answer exact). Both are optional, configured at construction
	// (see WithStore and WithApprox in cache.go), and consulted in the
	// fixed order memo → approx → store → compute.
	artifacts *store.Store
	approx    *approx.Cache

	// scenMu guards scenarios, the session memo of compiled temporal
	// scenario plans: queries repeating a (latency, churn, discipline)
	// tuple — a sweep, a long-lived server — share one compiled plan.
	scenMu    sync.Mutex
	scenarios map[string]*des.Scenario
}

// evaluatorMaxScenarios bounds the compiled-scenario memo; a compiled
// plan is tiny, so the bound only guards servers fed unbounded distinct
// scenario strings.
const evaluatorMaxScenarios = 256

// scenario compiles the query's temporal scenario, memoized per session
// by the raw option tuple. The query is already normalized, so Compile
// cannot fail here on the session's own queries; the error path covers
// direct callers.
func (e *Evaluator) scenario(q Query) (*des.Scenario, error) {
	o := q.timedOptions()
	raw := fmt.Sprintf("%s|%s|%d|%g|%g|%t", o.Latency, o.Churn, o.Window, o.HedgeMS, o.DeadlineMS, o.Randomized)
	e.scenMu.Lock()
	if sc, ok := e.scenarios[raw]; ok {
		e.scenMu.Unlock()
		return sc, nil
	}
	e.scenMu.Unlock()
	sc, err := des.Compile(o)
	if err != nil {
		return nil, err
	}
	e.scenMu.Lock()
	defer e.scenMu.Unlock()
	if e.scenarios == nil {
		e.scenarios = map[string]*des.Scenario{}
	}
	if len(e.scenarios) < evaluatorMaxScenarios {
		e.scenarios[raw] = sc
	}
	return sc, nil
}

// evalEntry is the per-system cache. Its mutex guards the cached fields
// and the in-flight build registry only — it is never held while an
// expensive artifact builds; concurrent cold queries coalesce onto one
// detached single-flight build instead (see singleflight).
type evalEntry struct {
	mu sync.Mutex

	// builds registers the in-flight single-flight artifact builds by
	// key, so concurrent cold queries share one build per artifact.
	builds map[string]*buildCall

	mask    MaskSystem
	maskErr error
	maskOK  bool

	wide    WideMaskSystem
	wideErr error
	wideOK  bool

	table    *quorum.WitnessTable
	tableErr error
	tableOK  bool

	quorumMasks []uint64

	// failCounts[g] is the number of g-element green sets containing no
	// quorum: the availability polynomial F_p = sum_g failCounts[g] q^g
	// p^(n-g).
	failCounts []float64

	pc    int
	pcErr error
	pcOK  bool

	ppc map[float64]float64

	// strategies memoizes optimized strategies by options key (see
	// Evaluator.StrategyCtx); successes only.
	strategies map[string]*rw.Strategy

	resilience int
	resErr     error
	resOK      bool
}

// EvaluatorOption configures an Evaluator.
type EvaluatorOption func(*Evaluator)

// WithTrials sets the Monte Carlo trial count used by
// EstimateAverageProbes (default 10000).
func WithTrials(trials int) EvaluatorOption {
	return func(e *Evaluator) { e.trials = trials }
}

// WithSeed sets the Monte Carlo PRNG seed (default 1). Estimates are
// reproducible for a fixed (trials, seed), independent of parallelism.
func WithSeed(seed uint64) EvaluatorOption {
	return func(e *Evaluator) { e.seed = seed }
}

// WithParallelism caps the worker goroutines of Monte Carlo estimation
// (default 0: GOMAXPROCS). Results are bit-identical for every setting.
func WithParallelism(workers int) EvaluatorOption {
	return func(e *Evaluator) { e.parallelism = workers }
}

// NewEvaluator returns a measurement session with the given options.
func NewEvaluator(opts ...EvaluatorOption) *Evaluator {
	e := &Evaluator{trials: 10000, seed: 1, entries: map[System]*evalEntry{}, specs: map[string]System{}}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// defaultEvaluator backs the package-level measure functions, so plain
// façade calls share one cache per process.
var defaultEvaluator = NewEvaluator()

// entry returns the per-system cache, creating (and, over capacity,
// evicting) as needed. Systems of non-comparable dynamic types cannot be
// map keys; they get a throwaway entry.
func (e *Evaluator) entry(sys System) *evalEntry {
	if sys == nil || !reflect.TypeOf(sys).Comparable() {
		return &evalEntry{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.entries[sys]; ok {
		return ent
	}
	if len(e.order) >= evaluatorMaxSystems {
		oldest := e.order[0]
		e.order = e.order[1:]
		delete(e.entries, oldest)
	}
	ent := &evalEntry{}
	e.entries[sys] = ent
	e.order = append(e.order, sys)
	return ent
}

// MaskView returns the cached word-level view of the system (the system
// itself when it implements MaskSystem natively, a cached-enumeration
// adapter otherwise).
func (e *Evaluator) MaskView(sys System) (MaskSystem, error) {
	ent := e.entry(sys)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	return ent.maskView(sys)
}

func (ent *evalEntry) maskView(sys System) (MaskSystem, error) {
	if !ent.maskOK {
		ent.mask, ent.maskErr = quorum.Masked(sys)
		ent.maskOK = true
	}
	return ent.mask, ent.maskErr
}

// WideMaskView returns the cached wide word-level view of the system (the
// system itself when it implements WideMaskSystem natively, an
// enumeration adapter under the quorum.EnumerationBudget guard
// otherwise).
func (e *Evaluator) WideMaskView(sys System) (WideMaskSystem, error) {
	ent := e.entry(sys)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if !ent.wideOK {
		ent.wide, ent.wideErr = quorum.WideMasked(sys)
		ent.wideOK = true
	}
	return ent.wide, ent.wideErr
}

// WitnessTable returns the cached dense characteristic-function table of
// the system (n <= 26).
func (e *Evaluator) WitnessTable(sys System) (*quorum.WitnessTable, error) {
	return e.WitnessTableCtx(context.Background(), sys)
}

// WitnessTableCtx is WitnessTable honoring cancellation, with the build
// single-flighted: any number of concurrent cold callers share exactly
// one build, and a caller whose ctx dies leaves the build to the rest.
func (e *Evaluator) WitnessTableCtx(ctx context.Context, sys System) (*quorum.WitnessTable, error) {
	return e.entryTable(ctx, e.entry(sys), sys)
}

// isCtxErr distinguishes cancellation from permanent failures: the cache
// records only the latter, so an aborted build leaves the entry clean
// for the next caller.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// storeSpec returns the canonical spec string keying a system's
// persistent records, or "" when the store tier does not apply: no
// store configured, or no canonical spec — ad-hoc systems are never
// persisted, because the key must be derivable identically in every
// process that shares the store directory.
func (e *Evaluator) storeSpec(sys System) string {
	if e.artifacts == nil {
		return ""
	}
	sp, ok := spec.Of(sys)
	if !ok {
		return ""
	}
	return sp
}

// The tier constructors below adapt one artifact kind to the persistent
// store for one single-flight call; a "" key (tier not applicable)
// yields nil, which singleflight treats as "no persistent tier". Put
// errors are deliberately dropped: the store is a cache, its own stats
// count write failures, and the computed value is already published.

func (e *Evaluator) tableTier(key string) *storeTier {
	if key == "" {
		return nil
	}
	return &storeTier{
		fetch: func() (any, bool) {
			t, ok := e.artifacts.GetTable(artifactTable, key)
			return t, ok
		},
		persist: func(val any) {
			if t, ok := val.(*quorum.WitnessTable); ok && t != nil {
				_ = e.artifacts.PutTable(artifactTable, key, t)
			}
		},
	}
}

func (e *Evaluator) intTier(kind, key string) *storeTier {
	if key == "" {
		return nil
	}
	return &storeTier{
		fetch: func() (any, bool) {
			v, ok := e.artifacts.GetInt(kind, key)
			return v, ok
		},
		persist: func(val any) {
			if v, ok := val.(int); ok {
				_ = e.artifacts.PutInt(kind, key, v)
			}
		},
	}
}

func (e *Evaluator) floatTier(kind, key string) *storeTier {
	if key == "" {
		return nil
	}
	return &storeTier{
		fetch: func() (any, bool) {
			v, ok := e.artifacts.GetFloat(kind, key)
			return v, ok
		},
		persist: func(val any) {
			if v, ok := val.(float64); ok {
				_ = e.artifacts.PutFloat(kind, key, v)
			}
		},
	}
}

func (e *Evaluator) strategyTier(key string) *storeTier {
	if key == "" {
		return nil
	}
	return &storeTier{
		fetch: func() (any, bool) {
			s, ok := e.artifacts.GetStrategy(artifactStrategy, key)
			return s, ok
		},
		persist: func(val any) {
			if s, ok := val.(*rw.Strategy); ok && s != nil {
				_ = e.artifacts.PutStrategy(artifactStrategy, key, s)
			}
		},
	}
}

func (e *Evaluator) floatsTier(kind, key string) *storeTier {
	if key == "" {
		return nil
	}
	return &storeTier{
		fetch: func() (any, bool) {
			v, ok := e.artifacts.GetFloats(kind, key)
			return v, ok
		},
		persist: func(val any) {
			if v, ok := val.([]float64); ok {
				_ = e.artifacts.PutFloats(kind, key, v)
			}
		},
	}
}

// entryTable is the single-flight witness-table path shared by every
// measure that needs the table.
func (e *Evaluator) entryTable(ctx context.Context, ent *evalEntry, sys System) (*quorum.WitnessTable, error) {
	v, err := e.singleflight(ctx, ent, artifactTable, artifactTable,
		func() (any, error, bool) {
			if ent.tableOK {
				return ent.table, ent.tableErr, true
			}
			return nil, nil, false
		},
		func(v any, err error) {
			ent.table, _ = v.(*quorum.WitnessTable)
			ent.tableErr, ent.tableOK = err, true
		},
		e.tableTier(e.storeSpec(sys)),
		func(bctx context.Context) (any, error) {
			return quorum.BuildWitnessTableCtx(bctx, sys)
		})
	if err != nil {
		return nil, err
	}
	table, _ := v.(*quorum.WitnessTable)
	return table, nil
}

// QuorumMasks returns the cached minimal quorum masks of the system.
func (e *Evaluator) QuorumMasks(sys System) ([]uint64, error) {
	ent := e.entry(sys)
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.quorumMasks == nil {
		ms, err := ent.maskView(sys)
		if err != nil {
			return nil, err
		}
		ent.quorumMasks = ms.QuorumMasks()
	}
	out := make([]uint64, len(ent.quorumMasks))
	copy(out, ent.quorumMasks)
	return out, nil
}

// Availability returns F_p(S). Systems with the ExactAvailability
// capability answer from their closed form; for others the session
// derives an availability polynomial from the witness table once — one
// coefficient per green count — and every later p is a Horner-style
// O(n) evaluation instead of a fresh 2^n enumeration. For systems with
// neither a closed form nor a table-sized universe exact availability
// does not exist, and this error-less form panics with the actionable
// bound error; use AvailabilityCtx to handle it gracefully.
func (e *Evaluator) Availability(sys System, p float64) float64 {
	// The background context is never done, so the only possible error is
	// the permanent exact-availability bound.
	v, err := e.AvailabilityCtx(context.Background(), sys, p)
	if err != nil {
		panic(err)
	}
	return v
}

// AvailabilityCtx is Availability honoring cancellation of the one-time
// polynomial derivation; a done ctx returns ctx.Err(). Closed-form
// systems never consult the context.
func (e *Evaluator) AvailabilityCtx(ctx context.Context, sys System, p float64) (float64, error) {
	if ea, ok := sys.(ExactAvailability); ok {
		return ea.AvailabilityIID(p), nil
	}
	ent := e.entry(sys)
	v, err := e.singleflight(ctx, ent, artifactAvailPoly, artifactAvailPoly,
		func() (any, error, bool) {
			if ent.failCounts != nil {
				return ent.failCounts, nil, true
			}
			return nil, nil, false
		},
		func(v any, err error) {
			// Permanent failures (the table bound) are cheap to rediscover
			// through the cached table entry, so only successes are kept.
			if err == nil {
				ent.failCounts, _ = v.([]float64)
			}
		},
		e.floatsTier(artifactAvailPoly, e.storeSpec(sys)),
		func(bctx context.Context) (any, error) {
			table, err := e.entryTable(bctx, ent, sys)
			if err != nil {
				return nil, err
			}
			return failCountsOf(bctx, table)
		})
	if err != nil {
		if isCtxErr(err) {
			return 0, err
		}
		// No table (universe too large) and no closed form: exact
		// availability is out of reach, so answer with the actionable
		// bound error instead of the enumeration panic of old.
		return 0, e.boundify(fmt.Errorf("exact availability of %s needs a witness table: %w", sys.Name(), err), sys)
	}
	counts, _ := v.([]float64)
	n := sys.Size()
	q := 1 - p
	total := 0.0
	for g := 0; g <= n; g++ {
		if counts[g] != 0 {
			total += counts[g] * math.Pow(q, float64(g)) * math.Pow(p, float64(n-g))
		}
	}
	if total < 0 {
		return 0, nil
	}
	if total > 1 {
		return 1, nil
	}
	return total, nil
}

// failCountsOf tallies, per green count, the subsets without a quorum,
// checking ctx periodically along the 2^n scan.
func failCountsOf(ctx context.Context, table *quorum.WitnessTable) ([]float64, error) {
	n := table.Size()
	counts := make([]float64, n+1)
	for mask := uint64(0); mask < bitset.Pow2(n); mask++ {
		if mask&0xFFFF == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !table.Contains(mask) {
			counts[bits.OnesCount64(mask)]++
		}
	}
	return counts, nil
}

// ExpectedProbes returns the exact expected probe count of the system's
// deterministic strategy under IID(p) failures, via the ExactExpectation
// capability.
func (e *Evaluator) ExpectedProbes(sys System, p float64) (float64, error) {
	if ee, ok := sys.(ExactExpectation); ok {
		return ee.ExpectedProbesIID(p), nil
	}
	return 0, &UnsupportedError{What: "closed-form expected probes", Name: sys.Name(), Hint: "ExactExpectation"}
}

// ProbeComplexity returns the exact worst-case probe complexity PC(S),
// memoized and sharing the session's witness table.
func (e *Evaluator) ProbeComplexity(sys System) (int, error) {
	return e.ProbeComplexityCtx(context.Background(), sys)
}

// ProbeComplexityCtx is ProbeComplexity honoring cancellation of the
// minimax DP; an aborted solve returns ctx.Err() and caches nothing.
// The solve (and the table build under it) is single-flighted: N
// concurrent cold queries for PC(S) run one build, and a cancelled
// leader hands the build to the waiting followers.
func (e *Evaluator) ProbeComplexityCtx(ctx context.Context, sys System) (int, error) {
	ent := e.entry(sys)
	v, err := e.singleflight(ctx, ent, artifactPC, artifactPC,
		func() (any, error, bool) {
			if ent.pcOK {
				return ent.pc, ent.pcErr, true
			}
			return nil, nil, false
		},
		func(v any, err error) {
			ent.pc, _ = v.(int)
			ent.pcErr, ent.pcOK = err, true
		},
		e.intTier(artifactPC, e.storeSpec(sys)),
		func(bctx context.Context) (any, error) {
			table, err := e.entryTable(bctx, ent, sys)
			if err != nil {
				return nil, err
			}
			return strategy.OptimalPCWithTableCtx(bctx, sys, table)
		})
	if err != nil {
		return 0, err
	}
	pc, _ := v.(int)
	return pc, nil
}

// AverageProbeComplexity returns the exact probabilistic probe complexity
// PPC_p(S), memoized per (system, p) and sharing the session's witness
// table across distinct p.
func (e *Evaluator) AverageProbeComplexity(sys System, p float64) (float64, error) {
	return e.AverageProbeComplexityCtx(context.Background(), sys, p)
}

// AverageProbeComplexityCtx is AverageProbeComplexity honoring
// cancellation of the expectimax DP; an aborted solve returns ctx.Err()
// and caches nothing.
func (e *Evaluator) AverageProbeComplexityCtx(ctx context.Context, sys System, p float64) (float64, error) {
	ent := e.entry(sys)
	v, err := e.singleflight(ctx, ent, artifactPPC, artifactPPC+":"+strconv.FormatFloat(p, 'g', -1, 64),
		func() (any, error, bool) {
			if v, ok := ent.ppc[p]; ok {
				return v, nil, true
			}
			return nil, nil, false
		},
		func(v any, err error) {
			if err != nil {
				return
			}
			if ent.ppc == nil {
				ent.ppc = map[float64]float64{}
			}
			ent.ppc[p], _ = v.(float64)
		},
		e.floatTier(artifactPPC, store.ParamKeyIf(e.storeSpec(sys), p)),
		func(bctx context.Context) (any, error) {
			table, err := e.entryTable(bctx, ent, sys)
			if err != nil {
				return nil, err
			}
			return strategy.OptimalPPCWithTableCtx(bctx, sys, table, p)
		})
	if err != nil {
		return 0, err
	}
	f, _ := v.(float64)
	return f, nil
}

// OptimalStrategyTree materializes a worst-case-optimal probe strategy
// tree, sharing the session's witness table.
func (e *Evaluator) OptimalStrategyTree(sys System) (*StrategyNode, error) {
	return e.OptimalStrategyTreeCtx(context.Background(), sys)
}

// OptimalStrategyTreeCtx is OptimalStrategyTree honoring cancellation
// across the solve and the tree descent.
func (e *Evaluator) OptimalStrategyTreeCtx(ctx context.Context, sys System) (*StrategyNode, error) {
	table, err := e.entryTable(ctx, e.entry(sys), sys)
	if err != nil {
		return nil, err
	}
	return strategy.BuildOptimalPCWithTableCtx(ctx, sys, table)
}

// measuresAvailable lists the wire measure names that still work for sys
// at its size: the exact DPs up to strategy.MaxUniverse, the
// table-derived availability up to quorum.MaxTableUniverse (or the
// closed form at any size), the closed-form expectation, and Monte Carlo
// estimation whenever a probing strategy dispatches.
func measuresAvailable(sys System) []string {
	n := sys.Size()
	var out []string
	if n <= strategy.MaxUniverse {
		out = append(out, string(MeasurePC), string(MeasurePPC), string(MeasureTree))
	}
	if _, ok := sys.(ExactAvailability); ok || n <= quorum.MaxTableUniverse {
		out = append(out, string(MeasureAvailability))
	}
	if _, ok := sys.(ExactExpectation); ok {
		out = append(out, string(MeasureExpected))
	}
	switch sys.(type) {
	case Prober, finderSystem:
		// The temporal engine schedules the same strategies the Monte
		// Carlo estimator replays, so the timed measures track it.
		out = append(out, string(MeasureEstimate),
			string(MeasureTimedTTQ), string(MeasureTimedReach), string(MeasureTimedInFlight))
	}
	if n <= quorum.MaxTableUniverse {
		out = append(out, string(MeasureLoad), string(MeasureCapacity))
	}
	if hasExactResilience(sys) || n <= quorum.MaxTableUniverse {
		out = append(out, string(MeasureResilience))
	}
	return out
}

// hasExactResilience reports whether both roles of the system's
// read/write view answer resilience in closed form (at any size).
func hasExactResilience(sys System) bool {
	rwv := rw.As(sys)
	_, rok := rwv.ReadRole().(quorum.ExactResilience)
	_, wok := rwv.WriteRole().(quorum.ExactResilience)
	return rok && wok
}

// boundify makes a bound error actionable: when err wraps a
// quorum.BoundError that does not yet name alternatives, the returned
// error's bound error lists the measures still available for sys. Other
// errors pass through unchanged.
func (e *Evaluator) boundify(err error, sys System) error {
	var be *quorum.BoundError
	if err == nil || !errors.As(err, &be) || len(be.Available) > 0 {
		return err
	}
	filled := &quorum.BoundError{Op: be.Op, N: be.N, Max: be.Max, Available: measuresAvailable(sys)}
	return joinBound{msg: err.Error(), bound: filled}
}

// joinBound keeps the original error text as context while exposing the
// filled-in BoundError to errors.As/Is chains.
type joinBound struct {
	msg   string
	bound *quorum.BoundError
}

func (j joinBound) Error() string { return j.msg + helpSuffix(j.bound) }
func (j joinBound) Unwrap() error { return j.bound }

// helpSuffix renders the still-available hint once (the wrapped bound
// error's own text is already inside msg, without alternatives).
func helpSuffix(be *quorum.BoundError) string {
	if len(be.Available) == 0 {
		return ""
	}
	return fmt.Sprintf("; still available at n = %d: %s", be.N, strings.Join(be.Available, ", "))
}

// EstimateAverageProbes estimates by simulation the average probes of the
// system's FindWitness strategy under IID(p) failures with the session's
// trials, seed and parallelism, returning the mean and the 95% confidence
// half-interval. The summary is bit-identical across parallelism
// settings.
func (e *Evaluator) EstimateAverageProbes(sys System, p float64) (mean, halfCI float64, err error) {
	return e.estimateCtx(context.Background(), sys, p, e.trials, e.seed)
}

// EstimateAverageProbesCtx is EstimateAverageProbes honoring
// cancellation of the trial loop; a done ctx aborts between trial chunks
// with ctx.Err().
func (e *Evaluator) EstimateAverageProbesCtx(ctx context.Context, sys System, p float64) (mean, halfCI float64, err error) {
	return e.estimateCtx(ctx, sys, p, e.trials, e.seed)
}

// estimateCtx is the fixed-budget Monte Carlo path with explicit trials
// and seed (Queries override the session's settings per request).
func (e *Evaluator) estimateCtx(ctx context.Context, sys System, p float64, trials int, seed uint64) (mean, half float64, err error) {
	s, err := e.estimateAdaptiveCtx(ctx, sys, p, trials, seed, nil)
	if err != nil {
		return 0, 0, err
	}
	return s.Mean, halfCI(s), nil
}

// halfCI is the 95% confidence half-interval of a summary.
func halfCI(s stats.Summary) float64 {
	lo, hi := s.CI95()
	return (hi - lo) / 2
}

// estimateAdaptiveCtx is the single Monte Carlo trial loop behind every
// estimate: fixed-budget runs pass a nil observer, streaming and
// tolerance-driven runs observe the in-order accumulation checkpoints
// (sim.Chunk) and may stop early. Systems with the wide probing
// capability (all built-in constructions) run the words-native trial
// loop: the coloring, the probe log and the witness all live in
// per-worker word buffers, so a trial's footprint is a few n/64-word
// buffers reused across every trial, with no per-probe heap allocation
// at any universe size. The words path probes the same elements in the
// same order as the bitset path, so summaries are bit-identical between
// the two (pinned by TestWideEstimateBitIdentical).
func (e *Evaluator) estimateAdaptiveCtx(ctx context.Context, sys System, p float64, maxTrials int, seed uint64, observe func(sim.Chunk) bool) (stats.Summary, error) {
	n := sys.Size()
	if wp, ok := sys.(probe.WordsProber); ok {
		return sim.EstimateAdaptiveCtx(ctx, maxTrials, seed, e.parallelism,
			func() *probe.WordsOracle { return probe.NewWordsOracle(n) },
			func(rng *rand.Rand, o *probe.WordsOracle) float64 {
				coloring.IIDWordsInto(o.RedWords(), n, p, rng)
				o.Reset()
				wp.ProbeWitnessWords(o)
				return float64(o.Probes())
			}, observe)
	}
	if _, err := guardPanic("estimate probe", func() (Witness, error) { return FindWitness(sys, NewOracle(AllGreen(n))) }); err != nil {
		return stats.Summary{}, err
	}
	type buffers struct {
		col *coloring.Coloring
		o   *probe.ColoringOracle
	}
	return sim.EstimateAdaptiveCtx(ctx, maxTrials, seed, e.parallelism,
		func() *buffers {
			col := coloring.New(n)
			return &buffers{col: col, o: probe.NewOracle(col)}
		},
		func(rng *rand.Rand, b *buffers) float64 {
			coloring.IIDInto(b.col, p, rng)
			b.o.Reset()
			if _, err := FindWitness(sys, b.o); err != nil {
				panic(err) // unreachable: dispatch validated above
			}
			return float64(b.o.Probes())
		}, observe)
}

// estimateAvailabilityCtx Monte Carlo-estimates the failure probability
// F_p(S) as the mean of the no-live-quorum indicator over seeded IID
// colorings, with the harness's usual deterministic 95% CI — the
// graceful-degradation fallback when the exact availability polynomial
// cannot be derived inside a query's deadline budget. It needs a wide
// mask view (native on every built-in construction, an enumeration
// adapter within budget otherwise).
func (e *Evaluator) estimateAvailabilityCtx(ctx context.Context, sys System, p float64, trials int, seed uint64) (stats.Summary, error) {
	ws, err := e.WideMaskView(sys)
	if err != nil {
		return stats.Summary{}, err
	}
	n := sys.Size()
	type buffers struct{ red, green []uint64 }
	return sim.EstimateWithWorkersCtx(ctx, trials, seed, e.parallelism,
		func() *buffers {
			w := quorum.WordCount(n)
			return &buffers{red: make([]uint64, w), green: make([]uint64, w)}
		},
		func(rng *rand.Rand, b *buffers) float64 {
			coloring.IIDWordsInto(b.red, n, p, rng)
			quorum.ComplementWordsInto(b.green, b.red, n)
			if ws.ContainsQuorumWords(b.green) {
				return 0
			}
			return 1
		})
}

// resolve maps a query to its System and canonical spec string. Systems
// given by value are used as-is; specs go through the construction
// registry with the built value cached by canonical spec, so every query
// naming the same construction shares one artifact cache entry.
func (e *Evaluator) resolve(q Query) (System, string, error) {
	if q.System != nil {
		s, _ := SpecOf(q.System)
		return q.System, s, nil
	}
	sys, err := spec.Parse(q.Spec)
	if err != nil {
		return nil, "", err
	}
	canonical, ok := SpecOf(sys)
	if !ok {
		// Not canonicalizable: evaluate without spec-level sharing.
		return sys, q.Spec, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, hit := e.specs[canonical]; hit {
		return cached, canonical, nil
	}
	if len(e.specOrder) >= evaluatorMaxSystems {
		oldest := e.specOrder[0]
		e.specOrder = e.specOrder[1:]
		delete(e.specs, oldest)
	}
	e.specs[canonical] = sys
	e.specOrder = append(e.specOrder, canonical)
	return sys, canonical, nil
}

// Do executes one Query against the session's caches: it is a fold of
// the Stream cells into one Result — the single evaluation path. The
// returned error is non-nil when the query is invalid, the spec does not
// parse, a requested measure fails, or ctx is done — cancellation
// surfaces as ctx.Err() (possibly wrapped) and leaves every cache
// consistent: later calls recompute as if the cancelled call never
// happened.
func (e *Evaluator) Do(ctx context.Context, q Query) (*Result, error) {
	results, err := FoldCells(e.Stream(ctx, q), 1)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// DoBatch executes the queries in parallel over the session's shared
// caches, fanning out across min(parallelism, len(queries)) workers
// (session parallelism 0 meaning GOMAXPROCS): it is a fold of the
// StreamBatch cells into per-query Results. It returns one Result per
// query in order; a query that fails for its own reasons yields a Result
// with Error set and does not disturb its batch mates. Cancelling ctx
// aborts the whole batch promptly with ctx.Err() and nil results.
func (e *Evaluator) DoBatch(ctx context.Context, queries []Query) ([]*Result, error) {
	return FoldCells(e.StreamBatch(ctx, queries), len(queries))
}
