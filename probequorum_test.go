package probequorum

import (
	"errors"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestFindWitnessDispatch(t *testing.T) {
	maj, _ := NewMajority(7)
	wheel, _ := NewWheel(6)
	tri, _ := NewTriang(4)
	tree, _ := NewTree(2)
	hqs, _ := NewHQS(2)
	rng := rand.New(rand.NewPCG(1, 1))
	for _, sys := range []System{maj, wheel, tri, tree, hqs} {
		t.Run(sys.Name(), func(t *testing.T) {
			for trial := 0; trial < 50; trial++ {
				col := IIDColoring(sys.Size(), 0.4, rng)
				o := NewOracle(col)
				w, err := FindWitness(sys, o)
				if err != nil {
					t.Fatalf("FindWitness: %v", err)
				}
				if err := VerifyWitness(sys, w, col); err != nil {
					t.Fatalf("witness invalid: %v", err)
				}
				o2 := NewOracle(col)
				wr, err := FindWitnessRandomized(sys, o2, rng)
				if err != nil {
					t.Fatalf("FindWitnessRandomized: %v", err)
				}
				if err := VerifyWitness(sys, wr, col); err != nil {
					t.Fatalf("randomized witness invalid: %v", err)
				}
				if wr.Color != w.Color {
					t.Fatalf("strategies disagree on the system state")
				}
			}
		})
	}
}

func TestAvailabilityAndExpectedProbes(t *testing.T) {
	tri, _ := NewTriang(5)
	if f := Availability(tri, 0.5); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("Triang availability at 1/2 = %v, want 0.5 (self-dual)", f)
	}
	exp, err := ExpectedProbes(tri, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(2*5 - 1)
	if exp <= 0 || exp > bound {
		t.Errorf("ExpectedProbes = %v, want in (0, %v]", exp, bound)
	}
	mean, half, err := EstimateAverageProbes(tri, 0.5, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-exp) > 4*half+0.2 {
		t.Errorf("estimate %v ± %v inconsistent with exact %v", mean, half, exp)
	}
}

func TestExactComplexities(t *testing.T) {
	maj3, _ := NewMajority(3)
	pc, err := ProbeComplexity(maj3)
	if err != nil || pc != 3 {
		t.Errorf("PC(Maj3) = %d, %v; want 3", pc, err)
	}
	ppc, err := AverageProbeComplexity(maj3, 0.5)
	if err != nil || math.Abs(ppc-2.5) > 1e-12 {
		t.Errorf("PPC(Maj3) = %v, %v; want 2.5", ppc, err)
	}
	tree, err := OptimalStrategyTree(maj3)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderStrategyTree(tree)
	if !strings.Contains(out, "x1") {
		t.Errorf("strategy render missing probes:\n%s", out)
	}
}

func TestRenderSystem(t *testing.T) {
	tri, _ := NewTriang(3)
	q := SetOf(tri.Size(), 3, 4, 5)
	out, err := RenderSystem(tri, q)
	if err != nil || !strings.Contains(out, "[4]") {
		t.Errorf("render = %q, %v", out, err)
	}
	tree, _ := NewTree(1)
	if _, err := RenderSystem(tree, nil); err != nil {
		t.Errorf("tree render: %v", err)
	}
	hqs, _ := NewHQS(1)
	if _, err := RenderSystem(hqs, nil); err != nil {
		t.Errorf("hqs render: %v", err)
	}
	// Every built-in construction implements the Renderer capability.
	for _, spec := range []string{"maj:3", "wheel:5", "vote:3,1,1,2", "recmaj:3x1"} {
		sys := MustParse(spec)
		if _, err := RenderSystem(sys, nil); err != nil {
			t.Errorf("render %s: %v", spec, err)
		}
	}
	// Systems without the capability report a helpful error.
	a, _ := NewMajority(3)
	b, _ := NewMajority(3)
	c, _ := NewMajority(3)
	outer, _ := NewMajority(3)
	comp, err := Compose(outer, []System{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RenderSystem(comp, nil); err == nil {
		t.Error("expected error for composite render")
	}
}

func TestCheckNondominated(t *testing.T) {
	for _, mk := range []func() (System, error){
		func() (System, error) { return NewMajority(5) },
		func() (System, error) { return NewWheel(5) },
		func() (System, error) { return NewTriang(3) },
		func() (System, error) { return NewTree(2) },
		func() (System, error) { return NewHQS(2) },
	} {
		sys, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckNondominated(sys); err != nil {
			t.Errorf("%s: %v", sys.Name(), err)
		}
	}
}

func TestClusterFacade(t *testing.T) {
	tri, _ := NewTriang(3)
	c := NewCluster(tri.Size())
	reg, err := NewRegister(c, tri)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Write("hello"); err != nil {
		t.Fatal(err)
	}
	got, _, err := reg.Read()
	if err != nil || got != "hello" {
		t.Errorf("Read = %q, %v", got, err)
	}
	mtx, err := NewDistMutex(c, tri)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := mtx.TryAcquire(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mtx.TryAcquire(2); !errors.Is(err, ErrContended) {
		t.Errorf("second acquire: %v, want ErrContended", err)
	}
	mtx.Release(1, q)

	// Wipe out a transversal: operations must fail cleanly.
	for _, id := range []int{0, 1, 3} {
		c.Crash(id)
	}
	if _, err := reg.Write("x"); !errors.Is(err, ErrNoLiveQuorum) {
		t.Errorf("Write after transversal crash: %v, want ErrNoLiveQuorum", err)
	}
}

func TestExtensionSystemsDispatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	vote, err := NewVote([]int{3, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	recmaj, err := NewRecMaj(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	maj3a, _ := NewMajority(3)
	maj3b, _ := NewMajority(3)
	maj3c, _ := NewMajority(3)
	outer, _ := NewMajority(3)
	comp, err := Compose(outer, []System{maj3a, maj3b, maj3c})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{vote, recmaj, comp} {
		t.Run(sys.Name(), func(t *testing.T) {
			if err := CheckNondominated(sys); err != nil {
				t.Fatalf("ND: %v", err)
			}
			for trial := 0; trial < 100; trial++ {
				col := IIDColoring(sys.Size(), 0.4, rng)
				o := NewOracle(col)
				w, err := FindWitness(sys, o)
				if err != nil {
					t.Fatalf("FindWitness: %v", err)
				}
				if err := VerifyWitness(sys, w, col); err != nil {
					t.Fatalf("witness: %v", err)
				}
			}
		})
	}
	// Exact expectations exist for RecMaj; availability for all three.
	if _, err := ExpectedProbes(recmaj, 0.3); err != nil {
		t.Errorf("ExpectedProbes(recmaj): %v", err)
	}
	if f := Availability(vote, 0.5); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("vote availability at 1/2 = %v", f)
	}
	if f := Availability(comp, 0.5); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("composite availability at 1/2 = %v", f)
	}
	// HQS and the Maj3 self-composition agree on availability everywhere.
	hqs2, _ := NewHQS(2)
	for _, p := range []float64{0.1, 0.3, 0.7} {
		if a, b := Availability(comp, p), Availability(hqs2, p); math.Abs(a-b) > 1e-9 {
			t.Errorf("p=%v: composite %v != HQS %v", p, a, b)
		}
	}
}

func TestColoringHelpers(t *testing.T) {
	col := ColoringFromReds(4, []int{2})
	if col.Of(2) != Red || col.Of(0) != Green {
		t.Error("ColoringFromReds colors wrong")
	}
	if AllGreen(3).RedCount() != 0 {
		t.Error("AllGreen has reds")
	}
	rng := rand.New(rand.NewPCG(2, 2))
	if IIDColoring(10, 1, rng).RedCount() != 10 {
		t.Error("IIDColoring p=1 not all red")
	}
}
