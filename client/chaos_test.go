package client_test

// The chaos-transport test matrix (PR 6): the client driven through the
// internal/chaos fault injector against a real probeserve server. Every
// schedule is deterministic — fixed plans, fixed seeds, byte budgets
// computed from the actual wire bytes — so these hold under -race, and
// every test asserts through the chaos counters that the faults really
// fired.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probequorum"
	"probequorum/client"
	"probequorum/internal/chaos"
	"probequorum/internal/probeserve"
)

// chaosPair wires a fresh server to a client whose transport injects the
// plan, with fast backoff so retry tests stay quick.
func chaosPair(t *testing.T, plan chaos.Plan, opts ...client.Option) (*client.Client, *chaos.Transport, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(probeserve.New(nil).Handler())
	t.Cleanup(ts.Close)
	tr := chaos.NewTransport(nil, plan)
	opts = append([]client.Option{
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond),
	}, opts...)
	return client.New(ts.URL, opts...), tr, ts
}

func wireQueries() []probequorum.Query {
	return []probequorum.Query{{
		Spec:     "maj:5",
		Measures: []probequorum.Measure{probequorum.MeasurePC, probequorum.MeasurePPC, probequorum.MeasureAvailability},
		Ps:       []float64{0.3, 0.6},
	}}
}

// TestEvalRetries429Burst pins the headline retry property: a burst of
// sheds is retried under backoff and the eventual answer is bit-identical
// to an unchaosed call — /v1/eval is deterministic.
func TestEvalRetries429Burst(t *testing.T) {
	clean, _, _ := chaosPair(t, nil)
	want, err := clean.Eval(context.Background(), wireQueries())
	if err != nil {
		t.Fatalf("clean eval: %v", err)
	}

	c, tr, _ := chaosPair(t, chaos.Burst(2, chaos.Step{Action: chaos.Reject429, RetryAfter: 5 * time.Millisecond}))
	got, err := c.Eval(context.Background(), wireQueries())
	if err != nil {
		t.Fatalf("eval through 429 burst: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("retried answer differs from clean answer:\n got %+v\nwant %+v", got[0], want[0])
	}
	counts := tr.Counts()
	if counts["reject429"] != 2 || counts["pass"] != 1 {
		t.Errorf("chaos counts = %v, want exactly 2 sheds then 1 pass", counts)
	}
}

// TestEvalRetryBudgetExhausted pins the bound: sheds past the retry
// budget surface as a typed error matching ErrOverloaded, after exactly
// 1 + retries attempts.
func TestEvalRetryBudgetExhausted(t *testing.T) {
	c, tr, _ := chaosPair(t, chaos.Burst(10, chaos.Step{Action: chaos.Reject429, RetryAfter: time.Millisecond}),
		client.WithRetries(2))
	_, err := c.Eval(context.Background(), wireQueries())
	if err == nil {
		t.Fatal("eval succeeded through an unbroken shed wall")
	}
	if !errors.Is(err, client.ErrOverloaded) {
		t.Errorf("err = %v, want ErrOverloaded", err)
	}
	var se *client.ServerError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Errorf("err = %v, want a *ServerError with status 429", err)
	}
	if counts := tr.Counts(); counts["reject429"] != 3 {
		t.Errorf("chaos counts = %v, want 3 attempts (1 + 2 retries)", counts)
	}
}

// TestEvalRetriesConnectionReset pins transport-error retries: a reset
// round trip is retried and succeeds.
func TestEvalRetriesConnectionReset(t *testing.T) {
	c, tr, _ := chaosPair(t, chaos.Plan{{Action: chaos.Reset}})
	res, err := c.Eval(context.Background(), wireQueries())
	if err != nil {
		t.Fatalf("eval through reset: %v", err)
	}
	if res[0].PC == nil || *res[0].PC != 5 {
		t.Errorf("result = %+v, want pc 5", res[0])
	}
	counts := tr.Counts()
	if counts["reset"] != 1 || counts["pass"] != 1 {
		t.Errorf("chaos counts = %v, want 1 reset then 1 pass", counts)
	}
}

// TestEvalRetriesSeededSchedule drives a reproducible mixed-fault
// schedule: under a 50/50 shed/pass seeded plan the client still answers
// every call, and the same seed injects the same faults.
func TestEvalRetriesSeededSchedule(t *testing.T) {
	weights := []chaos.Weighted{
		{Step: chaos.Step{Action: chaos.Pass}, Weight: 1},
		{Step: chaos.Step{Action: chaos.Reject429, RetryAfter: time.Millisecond}, Weight: 1},
	}
	plan := chaos.Seeded(42, 12, weights)
	if !reflect.DeepEqual(plan, chaos.Seeded(42, 12, weights)) {
		t.Fatal("Seeded is not reproducible for a fixed seed")
	}
	c, _, _ := chaosPair(t, plan, client.WithRetries(12))
	for call := 0; call < 3; call++ {
		if _, err := c.Eval(context.Background(), wireQueries()); err != nil {
			t.Fatalf("call %d through seeded schedule: %v", call, err)
		}
	}
}

// TestEvalDoesNotRetryShutdown pins the final-error contract: a draining
// server's typed shutdown answer is not retried — one attempt, a typed
// error.
func TestEvalDoesNotRetryShutdown(t *testing.T) {
	eval := probequorum.NewEvaluator()
	srv := probeserve.New(eval)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.BeginDrain()

	tr := chaos.NewTransport(nil, nil)
	c := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	_, err := c.Eval(context.Background(), wireQueries())
	if !errors.Is(err, client.ErrServerShutdown) {
		t.Fatalf("err = %v, want ErrServerShutdown", err)
	}
	if counts := tr.Counts(); counts["pass"] != 1 {
		t.Errorf("chaos counts = %v, want exactly one attempt (shutdown is final)", counts)
	}
}

// rawStream posts the batch directly and returns the raw NDJSON bytes —
// the ground truth the truncation budgets are computed from.
func rawStream(t *testing.T, url string, queries []probequorum.Query) []byte {
	t.Helper()
	body, err := json.Marshal(probeserve.EvalRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("raw stream status %d: %s", res.StatusCode, data)
	}
	return data
}

// collect drains a StreamEval iterator into cells and the terminal
// error (nil for a completed stream).
func collect(c *client.Client, queries []probequorum.Query) ([]probequorum.Cell, error) {
	var cells []probequorum.Cell
	for cell, err := range c.StreamEval(context.Background(), queries) {
		if err != nil {
			return cells, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// TestStreamResumesAfterTruncation pins stream resume: a response cut
// mid-NDJSON is retried, the already-delivered cells are skipped on the
// resumed attempt, and the final cell sequence is bit-identical to an
// unchaosed stream — no losses, no duplicates.
func TestStreamResumesAfterTruncation(t *testing.T) {
	queries := wireQueries()
	clean, _, ts := chaosPair(t, nil)
	want, err := collect(clean, queries)
	if err != nil {
		t.Fatalf("clean stream: %v", err)
	}
	if len(want) < 3 {
		t.Fatalf("test batch yields %d cells; need >= 3 to truncate mid-stream", len(want))
	}

	// Cut mid-way through the third NDJSON line: two whole cells arrive,
	// the third dies mid-JSON. Computed from the actual bytes so the cut
	// never lands on a frame boundary by accident.
	raw := rawStream(t, ts.URL, queries)
	cut := int64(0)
	for i, newlines := 0, 0; i < len(raw); i++ {
		if raw[i] == '\n' {
			newlines++
			if newlines == 2 {
				cut = int64(i) + 5
				break
			}
		}
	}
	if cut == 0 || cut >= int64(len(raw)) {
		t.Fatalf("could not place a mid-stream cut in %d stream bytes", len(raw))
	}

	c, tr, _ := chaosPairAt(t, ts, chaos.Plan{{Action: chaos.Truncate, TruncateAfter: cut}})
	got, err := collect(c, queries)
	if err != nil {
		t.Fatalf("stream through truncation: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed stream differs from clean stream:\n got %d cells %+v\nwant %d cells %+v", len(got), got, len(want), want)
	}
	counts := tr.Counts()
	if counts["truncate"] != 1 || counts["pass"] != 1 {
		t.Errorf("chaos counts = %v, want 1 truncation then 1 clean pass", counts)
	}
}

// chaosPairAt is chaosPair against an existing server, for tests that
// need two clients on one server.
func chaosPairAt(t *testing.T, ts *httptest.Server, plan chaos.Plan, opts ...client.Option) (*client.Client, *chaos.Transport, *httptest.Server) {
	t.Helper()
	tr := chaos.NewTransport(nil, plan)
	opts = append([]client.Option{
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond),
	}, opts...)
	return client.New(ts.URL, opts...), tr, ts
}

// TestStreamTruncationBudgetExhausted pins the stream retry bound: a
// transport that truncates every attempt ends the iterator with an error
// matching ErrStreamTruncated after 1 + retries attempts.
func TestStreamTruncationBudgetExhausted(t *testing.T) {
	c, tr, _ := chaosPair(t, chaos.Burst(10, chaos.Step{Action: chaos.Truncate, TruncateAfter: 3}),
		client.WithRetries(1))
	_, err := collect(c, wireQueries())
	if err == nil {
		t.Fatal("stream succeeded through unbroken truncation")
	}
	if counts := tr.Counts(); counts["truncate"] != 2 {
		t.Errorf("chaos counts = %v, want 2 attempts (1 + 1 retry)", counts)
	}
}

// gatedClientSystem gates artifact builds so the drain test can catch a
// stream mid-evaluation; registered once as the "blockclient" spec.
type gatedClientSystem struct {
	inner   probequorum.System
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (g *gatedClientSystem) Name() string { return "GatedClient(3)" }
func (g *gatedClientSystem) Size() int    { return 3 }
func (g *gatedClientSystem) ContainsQuorum(s *probequorum.Set) bool {
	g.block()
	return g.inner.ContainsQuorum(s)
}
func (g *gatedClientSystem) Quorums() []*probequorum.Set {
	g.block()
	return g.inner.Quorums()
}
func (g *gatedClientSystem) block() {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
}

var (
	currentGatedClient  atomic.Pointer[gatedClientSystem]
	registerClientGated sync.Once
)

// TestStreamShutdownFrameNotRetried pins satellite (b) end to end: drain
// cutting a live stream reaches the client as a typed shutdown error —
// not ErrStreamTruncated — and is not retried.
func TestStreamShutdownFrameNotRetried(t *testing.T) {
	registerClientGated.Do(func() {
		probequorum.RegisterSpec("blockclient", func(arg string) (probequorum.System, error) {
			return currentGatedClient.Load(), nil
		})
	})
	g := &gatedClientSystem{
		inner:   probequorum.MustParse("maj:3"),
		gate:    make(chan struct{}),
		entered: make(chan struct{}),
	}
	currentGatedClient.Store(g)
	defer close(g.gate)

	srv := probeserve.New(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tr := chaos.NewTransport(nil, nil)
	c := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond))

	queries := []probequorum.Query{{Spec: "blockclient:", Measures: []probequorum.Measure{probequorum.MeasurePC}}}
	errc := make(chan error, 1)
	go func() {
		_, err := collect(c, queries)
		errc <- err
	}()
	<-g.entered // the server-side evaluation is inside its build
	srv.BeginDrain()

	err := <-errc
	if !errors.Is(err, client.ErrServerShutdown) {
		t.Fatalf("err = %v, want ErrServerShutdown", err)
	}
	if errors.Is(err, client.ErrStreamTruncated) {
		t.Error("shutdown surfaced as truncation — the typed frame was missed")
	}
	if counts := tr.Counts(); counts["pass"] != 1 {
		t.Errorf("chaos counts = %v, want exactly one attempt (shutdown is final)", counts)
	}
}

// TestUnaryTimeout pins satellite (a): a server that never answers can
// no longer hang a unary call — the configured timeout ends the attempt,
// and an attempt timeout is not confused with the caller's own context.
func TestUnaryTimeout(t *testing.T) {
	release := make(chan struct{})
	var hung atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hung.Add(1)
		<-release
	}))
	defer ts.Close()
	defer close(release)

	c := client.New(ts.URL, client.WithTimeout(50*time.Millisecond), client.WithRetries(0))
	start := time.Now()
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("health call succeeded against a hung server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; the default-client hang is back", elapsed)
	}
	if hung.Load() != 1 {
		t.Errorf("server saw %d requests, want 1", hung.Load())
	}
}
