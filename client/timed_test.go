package client_test

import (
	"context"
	"reflect"
	"testing"

	"probequorum"
)

// TestTimedStreamEndToEnd drives the temporal engine through the whole
// remote stack: a timed query on a wide system streams through
// probeserved's NDJSON frames and the client's iterator, the terminal
// timed-ttq cell carries the full TTQ distribution (including a p99),
// and folding the cells reproduces both the unary remote answer and
// the local façade bit for bit.
func TestTimedStreamEndToEnd(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()
	q := probequorum.Query{
		Spec:     "maj:1025",
		Measures: []probequorum.Measure{probequorum.MeasureTimedTTQ},
		Ps:       []float64{0.2},
		Trials:   100,
		Seed:     7,
		Latency:  "exp:3",
		Window:   4,
	}

	var cells []probequorum.Cell
	var ttq *probequorum.Cell
	for cell, err := range c.StreamEval(ctx, []probequorum.Query{q}) {
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, cell)
		if cell.Measure == probequorum.MeasureTimedTTQ && cell.Done {
			cc := cell
			ttq = &cc
		}
	}
	if ttq == nil {
		t.Fatalf("no terminal timed-ttq cell in %d cells", len(cells))
	}
	if ttq.Timed == nil {
		t.Fatalf("timed-ttq cell crossed the wire without its summary: %+v", ttq)
	}
	d := ttq.Timed.TTQ
	if !(d.P99MS > 0 && d.P50MS <= d.P99MS && d.P99MS <= d.MaxMS && ttq.Value == d.MeanMS) {
		t.Errorf("malformed remote TTQ distribution: %+v (cell value %v)", d, ttq.Value)
	}

	folded, err := probequorum.FoldCells(probequorum.CellSeq(cells), 1)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Eval(ctx, []probequorum.Query{q})
	if err != nil {
		t.Fatal(err)
	}
	local, err := probequorum.NewEvaluator().Do(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(folded[0], remote[0]) {
		t.Errorf("folded stream differs from unary remote answer:\n%+v\n%+v", folded[0], remote[0])
	}
	if !reflect.DeepEqual(remote[0], local) {
		t.Errorf("remote timed answer differs from local façade:\n%+v\n%+v", remote[0], local)
	}
}

// TestTimedScenarioErrorCrossesWire pins that a bad timed scenario
// surfaces as the query's typed error message through the remote path.
func TestTimedScenarioErrorCrossesWire(t *testing.T) {
	c := newPair(t)
	results, err := c.Eval(context.Background(), []probequorum.Query{{
		Spec:     "maj:5",
		Measures: []probequorum.Measure{probequorum.MeasureTimedTTQ},
		Ps:       []float64{0.3},
		Latency:  "warp:1",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Error == "" {
		t.Fatalf("bad latency grammar evaluated remotely: %+v", results[0])
	}
}

// TestSystemsListsTimedMeasures pins that /v1/systems advertises the
// temporal measures alongside the static ones.
func TestSystemsListsTimedMeasures(t *testing.T) {
	c := newPair(t)
	info, err := c.SystemsInfo(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := map[probequorum.Measure]bool{
		probequorum.MeasureTimedTTQ:      false,
		probequorum.MeasureTimedReach:    false,
		probequorum.MeasureTimedInFlight: false,
	}
	for _, m := range info.Measures {
		if _, ok := want[m]; ok {
			want[m] = true
		}
	}
	for m, seen := range want {
		if !seen {
			t.Errorf("/v1/systems does not list %s: %v", m, info.Measures)
		}
	}
}
