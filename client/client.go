// Package client is a small HTTP client for the probeserved evaluation
// service: it submits Query batches to /v1/eval and decodes the shared
// Result wire encoding, so remote evaluation reads like a local
// Evaluator.DoBatch call.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"probequorum"
	"probequorum/internal/probeserve"
)

// Client talks to one probeserved base URL.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient); use it to set timeouts or transports.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// New returns a client for the service at base, e.g.
// "http://localhost:8773".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Eval submits the query batch to /v1/eval and returns one Result per
// query, in order. Queries must name systems by Spec: a System value
// cannot cross the wire. Individually failed queries come back with
// Result.Error set, exactly as Evaluator.DoBatch reports them.
func (c *Client) Eval(ctx context.Context, queries []probequorum.Query) ([]*probequorum.Result, error) {
	for i, q := range queries {
		if q.System != nil {
			return nil, fmt.Errorf("client: query %d holds a System value; remote queries must name systems by Spec", i)
		}
	}
	body, err := json.Marshal(probeserve.EvalRequest{Queries: queries})
	if err != nil {
		return nil, fmt.Errorf("client: encode eval request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp probeserve.EvalResponse
	if err := c.do(req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(queries) {
		return nil, fmt.Errorf("client: got %d results for %d queries", len(resp.Results), len(queries))
	}
	return resp.Results, nil
}

// Systems returns the construction names registered on the server.
func (c *Client) Systems(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/systems", nil)
	if err != nil {
		return nil, err
	}
	var resp probeserve.SystemsResponse
	if err := c.do(req, &resp); err != nil {
		return nil, err
	}
	return resp.Specs, nil
}

// Render returns the server's ASCII rendering of the system named by the
// spec string.
func (c *Client) Render(ctx context.Context, spec string) (string, error) {
	u := c.base + "/v1/render?spec=" + url.QueryEscape(spec)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", decodeError(res.StatusCode, data)
	}
	return string(data), nil
}

// Health checks /healthz, returning nil when the service answers OK.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	io.Copy(io.Discard, io.LimitReader(res.Body, 1<<10))
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("client: health check returned %s", res.Status)
	}
	return nil
}

// maxResponseBytes bounds how much of a response the client will read.
// Reads that hit the bound fail loudly instead of silently truncating —
// a truncated JSON document would otherwise surface as a confusing
// decode error.
const maxResponseBytes = 64 << 20

// do executes the request and decodes the JSON answer into out, turning
// non-2xx answers into errors carrying the server's message.
func (c *Client) do(req *http.Request, out any) error {
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, maxResponseBytes+1))
	if err != nil {
		return err
	}
	if len(data) > maxResponseBytes {
		return fmt.Errorf("client: response exceeds %d bytes; split the batch", maxResponseBytes)
	}
	if res.StatusCode != http.StatusOK {
		return decodeError(res.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

func decodeError(status int, body []byte) error {
	var e probeserve.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("client: server returned %d: %s", status, e.Error)
	}
	return fmt.Errorf("client: server returned %d", status)
}
