// Package client is a small HTTP client for the probeserved evaluation
// service: it submits Query batches to /v1/eval and decodes the shared
// Result wire encoding, so remote evaluation reads like a local
// Evaluator.DoBatch call — and it consumes the /v1/stream NDJSON cell
// frames as an iterator, so remote streaming reads like a local
// Evaluator.StreamBatch call.
//
// The client is built for a fleet that sheds and fails: unary calls
// carry a default timeout so a hung server can never hang a caller,
// and every idempotent call retries transient failures — 429 sheds
// (honoring Retry-After), transient 5xx, connection resets, truncated
// streams — under a bounded exponential backoff with jitter. /v1/eval
// is deterministic, so a stream that dies mid-body is resumed by
// re-requesting and skipping the cells already delivered; the iterator
// yields each cell exactly once. Failures the server types as final
// (CodeShutdown) and the caller's own context ending are never retried.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"time"

	"probequorum"
	"probequorum/internal/probeserve"
)

// DefaultTimeout bounds one unary request (dial to last body byte).
// Streaming requests are bounded per-read by the caller's context
// instead: a legitimate stream can run far longer than any fixed cap.
const DefaultTimeout = 30 * time.Second

// DefaultRetries is the default retry budget: transient failures are
// retried up to this many times after the first attempt.
const DefaultRetries = 3

// Default backoff bounds: retry n sleeps roughly base·2ⁿ, jittered,
// capped at max, and never less than the server's Retry-After hint.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// ErrOverloaded matches (via errors.Is) a request shed by the server's
// admission gate with 429 Too Many Requests. The client retries these
// on its own; seeing this error means the retry budget ran out too.
var ErrOverloaded = errors.New("client: server overloaded")

// ErrServerShutdown matches (via errors.Is) a request or stream ended by
// server drain. It is final for this endpoint — the client does not
// retry it; a fleet caller re-resolves and goes elsewhere.
var ErrServerShutdown = errors.New("client: server shutting down")

// ServerError is a typed non-2xx answer decoded from the service's
// error body. It matches ErrOverloaded and ErrServerShutdown through
// errors.Is.
type ServerError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the service's machine-readable failure class ("overloaded",
	// "shutdown", "panic"), empty on untyped errors.
	Code string
	// Message is the server's human-readable error.
	Message string
	// RetryAfter is the server's Retry-After hint (zero when absent).
	RetryAfter time.Duration
}

func (e *ServerError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("client: server returned %d", e.Status)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// Is matches the typed sentinels so callers can branch with errors.Is
// without reaching into the struct.
func (e *ServerError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.Code == probeserve.CodeOverloaded || e.Status == http.StatusTooManyRequests
	case ErrServerShutdown:
		return e.Code == probeserve.CodeShutdown
	}
	return false
}

// Client talks to one probeserved base URL. It is safe for concurrent
// use.
type Client struct {
	base string
	// hc serves unary calls under an overall timeout; sc serves streams,
	// which must not be killed by a fixed cap mid-body.
	hc          *http.Client
	sc          *http.Client
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client for both unary
// and streaming calls, as given — its own Timeout (or lack of one)
// replaces the client's default timeout handling.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc, c.sc = hc, hc
			c.timeout = 0
		}
	}
}

// WithTimeout bounds each unary request attempt (default DefaultTimeout;
// non-positive disables the cap). Streaming calls are unaffected — bound
// those with the context.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetries sets the retry budget for idempotent calls: transient
// failures are retried up to n times after the first attempt (default
// DefaultRetries; 0 disables retries).
func WithRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithBackoff bounds the retry backoff: retry n sleeps base·2ⁿ with
// jitter, capped at max.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// New returns a client for the service at base, e.g.
// "http://localhost:8773".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(base, "/"),
		timeout:     DefaultTimeout,
		retries:     DefaultRetries,
		backoffBase: DefaultBackoffBase,
		backoffMax:  DefaultBackoffMax,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.hc == nil {
		c.hc = &http.Client{Timeout: c.timeout}
		c.sc = &http.Client{}
	} else if c.timeout > 0 {
		// WithTimeout alongside WithHTTPClient: respect the explicit cap
		// on unary calls without mutating the caller's client.
		hc := *c.hc
		hc.Timeout = c.timeout
		c.hc = &hc
	}
	return c
}

// retriable reports whether an attempt's failure is worth retrying: a
// transport-level failure (reset, refused, timeout of one attempt), a
// 429 shed, or a transient 5xx. The caller's own context ending and
// failures the server types as final (shutdown) are not.
func retriable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrServerShutdown) {
		// Both forms of a drain — the 503 answer and a stream's terminal
		// shutdown frame — are final for this endpoint.
		return false
	}
	var ste *streamError
	if errors.As(err, &ste) {
		// A terminal error frame is the server reporting the evaluation
		// itself failed; deterministic, so a retry answers the same.
		return false
	}
	var se *ServerError
	if errors.As(err, &se) {
		if se.Code == probeserve.CodeShutdown {
			return false
		}
		switch se.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return true
}

// backoff is the sleep before retry attempt (0-based): base·2ᵃᵗᵗᵉᵐᵖᵗ
// jittered into [d/2, d] so a shed burst of clients does not return in
// lockstep, capped at max, and never under the server's Retry-After.
func (c *Client) backoff(attempt int, err error) time.Duration {
	d := c.backoffBase
	for i := 0; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(rand.Int64N(int64(half)+1))
	}
	var se *ServerError
	if errors.As(err, &se) && se.RetryAfter > d {
		d = se.RetryAfter
	}
	return d
}

// sleepCtx sleeps d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Eval submits the query batch to /v1/eval and returns one Result per
// query, in order. Queries must name systems by Spec: a System value
// cannot cross the wire. Individually failed queries come back with
// Result.Error set, exactly as Evaluator.DoBatch reports them. Transient
// failures retry under the client's backoff policy — /v1/eval is
// deterministic, so a retried batch answers bit-identically.
func (c *Client) Eval(ctx context.Context, queries []probequorum.Query) ([]*probequorum.Result, error) {
	for i, q := range queries {
		if q.System != nil {
			return nil, requestErrorf("query %d holds a System value; remote queries must name systems by Spec", i)
		}
	}
	body, err := json.Marshal(probeserve.EvalRequest{Queries: queries})
	if err != nil {
		return nil, fmt.Errorf("client: encode eval request: %w", err)
	}
	var resp probeserve.EvalResponse
	if err := c.doJSON(ctx, http.MethodPost, c.base+"/v1/eval", body, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(queries) {
		return nil, protocolErrorf("got %d results for %d queries", len(resp.Results), len(queries))
	}
	return resp.Results, nil
}

// maxStreamLineBytes bounds one NDJSON frame the streaming reader will
// accept; a frame carrying a strategy-tree rendering is the largest
// legitimate line by far and fits comfortably. Oversized lines fail
// loudly instead of being split mid-JSON.
const maxStreamLineBytes = 8 << 20

// ErrStreamTruncated reports a /v1/stream response that ended without a
// terminal done or error frame: the transport failed mid-stream, so the
// cells received so far are a prefix, not the whole answer. The client
// retries and resumes these on its own; seeing this error means the
// retry budget ran out too.
var ErrStreamTruncated = errors.New("client: stream ended without a terminal frame")

// errStreamConsumerStopped is the internal signal that the iterating
// caller broke out; the stream is simply over.
var errStreamConsumerStopped = errors.New("client: stream consumer stopped")

// StreamEval submits the query batch to /v1/stream and returns the cell
// stream as an iterator, each cell yielded as its NDJSON frame arrives —
// remote streaming reads like a local Evaluator.StreamBatch call, and
// probequorum.FoldCells folds the cells into the same Results /v1/eval
// would have answered. The terminal pair of a failed stream carries a
// non-nil error: the server's error frame (matching ErrServerShutdown
// when drain cut the stream), ErrStreamTruncated or the transport
// failure once the retry budget is spent. Transient failures — sheds,
// resets, truncation — are retried and resumed: the cell stream is
// deterministic, so the client re-requests and skips the cells it
// already delivered, and the caller sees each cell exactly once.
// Breaking out of the iteration closes the response body, which cancels
// the server-side evaluation.
func (c *Client) StreamEval(ctx context.Context, queries []probequorum.Query) iter.Seq2[probequorum.Cell, error] {
	return func(yield func(probequorum.Cell, error) bool) {
		for i, q := range queries {
			if q.System != nil {
				yield(probequorum.Cell{}, fmt.Errorf("client: query %d holds a System value; remote queries must name systems by Spec", i))
				return
			}
		}
		body, err := json.Marshal(probeserve.EvalRequest{Queries: queries})
		if err != nil {
			yield(probequorum.Cell{}, fmt.Errorf("client: encode stream request: %w", err))
			return
		}
		delivered := 0
		for attempt := 0; ; attempt++ {
			err := c.streamOnce(ctx, body, &delivered, yield)
			switch {
			case err == nil, errors.Is(err, errStreamConsumerStopped):
				return
			case !retriable(err), attempt >= c.retries:
				yield(probequorum.Cell{}, err)
				return
			}
			if sleepCtx(ctx, c.backoff(attempt, err)) != nil {
				yield(probequorum.Cell{}, err)
				return
			}
		}
	}
}

// streamOnce runs one /v1/stream attempt, skipping the first *delivered
// cell frames (already yielded by an earlier attempt) and bumping the
// counter for each cell it hands the consumer. A nil return is a
// completed stream; errStreamConsumerStopped means the consumer broke
// out; any other error is the attempt's failure, judged by retriable.
func (c *Client) streamOnce(ctx context.Context, body []byte, delivered *int, yield func(probequorum.Cell, error) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := c.sc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(res.Body, 1<<20))
		return decodeError(res, data)
	}

	seen := 0
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 64<<10), maxStreamLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var frame probeserve.StreamFrame
		if err := json.Unmarshal(line, &frame); err != nil {
			return fmt.Errorf("client: decode stream frame: %w", err)
		}
		switch {
		case frame.Error != "":
			// Server-typed terminal frames are final: the evaluation
			// itself failed (or drain ended it) — a retry would not help.
			if frame.Code == probeserve.CodeShutdown {
				return fmt.Errorf("client: stream failed: %s: %w", frame.Error, ErrServerShutdown)
			}
			return &streamError{msg: frame.Error}
		case frame.Done != nil:
			return nil
		case frame.Cell != nil:
			seen++
			if seen <= *delivered {
				continue // resumed stream: already yielded by a prior attempt
			}
			*delivered++
			if !yield(*frame.Cell, nil) {
				return errStreamConsumerStopped
			}
		default:
			return protocolErrorf("empty stream frame %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: read stream: %w (%w)", err, ErrStreamTruncated)
	}
	return ErrStreamTruncated
}

// streamError is a terminal error frame reported by the server — an
// evaluation failure, not a transport one, so never retried.
type streamError struct{ msg string }

func (e *streamError) Error() string { return "client: stream failed: " + e.msg }

// RequestError reports a request the client refused to send: the caller
// built something that cannot cross the wire. Retrying unchanged cannot
// succeed. Match the class with errors.As.
type RequestError struct {
	// Msg describes the defect, without the "client: " prefix.
	Msg string
}

func (e *RequestError) Error() string { return "client: " + e.Msg }

// requestErrorf builds a *RequestError the way fmt.Errorf would spell it.
func requestErrorf(format string, args ...any) error {
	return &RequestError{Msg: fmt.Sprintf(format, args...)}
}

// ProtocolError reports a response the client could not trust: a frame,
// count, size or status that violates the service protocol. It is
// distinct from *ServerError (a well-formed error answer) and from
// transport errors (wrapped with %w). Match the class with errors.As.
type ProtocolError struct {
	// Msg describes the violation, without the "client: " prefix.
	Msg string
}

func (e *ProtocolError) Error() string { return "client: " + e.Msg }

// protocolErrorf builds a *ProtocolError the way fmt.Errorf would spell it.
func protocolErrorf(format string, args ...any) error {
	return &ProtocolError{Msg: fmt.Sprintf(format, args...)}
}

// Systems returns the construction names registered on the server.
func (c *Client) Systems(ctx context.Context) ([]string, error) {
	resp, err := c.SystemsInfo(ctx)
	if err != nil {
		return nil, err
	}
	return resp.Specs, nil
}

// SystemsInfo returns the full /v1/systems answer: the registered
// construction names and every measure the server recognizes,
// including the timed (temporal-engine) measures.
func (c *Client) SystemsInfo(ctx context.Context) (probeserve.SystemsResponse, error) {
	var resp probeserve.SystemsResponse
	err := c.doJSON(ctx, http.MethodGet, c.base+"/v1/systems", nil, &resp)
	return resp, err
}

// CacheStats returns the server's cache accounting: the evaluation
// session's build/coalesce and per-tier hit/miss counters, plus the
// persistent store footprint and approximate-cache sizes when the
// server runs those tiers (nil otherwise).
func (c *Client) CacheStats(ctx context.Context) (probeserve.CacheStatsResponse, error) {
	var resp probeserve.CacheStatsResponse
	err := c.doJSON(ctx, http.MethodGet, c.base+"/v1/admin/cache", nil, &resp)
	return resp, err
}

// Render returns the server's ASCII rendering of the system named by the
// spec string.
func (c *Client) Render(ctx context.Context, spec string) (string, error) {
	u := c.base + "/v1/render?spec=" + url.QueryEscape(spec)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", decodeError(res, data)
	}
	return string(data), nil
}

// Health checks /healthz, returning nil when the service answers OK. It
// is deliberately never retried: a health probe's job is to report the
// truth of this instant, not to paper over it.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	io.Copy(io.Discard, io.LimitReader(res.Body, 1<<10))
	if res.StatusCode != http.StatusOK {
		return protocolErrorf("health check returned %s", res.Status)
	}
	return nil
}

// Ready checks /readyz, returning nil while the server is admitting new
// evaluation work; a draining or saturated server answers 503. Like
// Health, it is never retried.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(res.Body, 1<<10))
	if res.StatusCode != http.StatusOK {
		return protocolErrorf("not ready: %s (%s)", res.Status, bytes.TrimSpace(data))
	}
	return nil
}

// maxResponseBytes bounds how much of a response the client will read.
// Reads that hit the bound fail loudly instead of silently truncating —
// a truncated JSON document would otherwise surface as a confusing
// decode error.
const maxResponseBytes = 64 << 20

// doJSON executes an idempotent JSON request under the client's retry
// policy and decodes the answer into out. The request body, when
// non-nil, is replayed verbatim on every attempt.
func (c *Client) doJSON(ctx context.Context, method, url string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, url, body, out)
		if err == nil {
			return nil
		}
		if !retriable(err) || attempt >= c.retries {
			return err
		}
		if sleepCtx(ctx, c.backoff(attempt, err)) != nil {
			return err
		}
	}
}

// once is a single request attempt: non-2xx answers become typed
// *ServerError values carrying the server's message, code and
// Retry-After hint.
func (c *Client) once(ctx context.Context, method, url string, body []byte, out any) error {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, reader)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, maxResponseBytes+1))
	if err != nil {
		return err
	}
	if len(data) > maxResponseBytes {
		return protocolErrorf("response exceeds %d bytes; split the batch", maxResponseBytes)
	}
	if res.StatusCode != http.StatusOK {
		return decodeError(res, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// decodeError builds the typed *ServerError of a non-2xx response.
func decodeError(res *http.Response, body []byte) error {
	se := &ServerError{Status: res.StatusCode}
	var e probeserve.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		se.Message, se.Code = e.Error, e.Code
		if e.RetryAfterMS > 0 {
			se.RetryAfter = time.Duration(e.RetryAfterMS) * time.Millisecond
		}
	}
	if se.RetryAfter == 0 {
		if secs, err := time.ParseDuration(res.Header.Get("Retry-After") + "s"); err == nil && secs > 0 {
			se.RetryAfter = secs
		}
	}
	return se
}
