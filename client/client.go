// Package client is a small HTTP client for the probeserved evaluation
// service: it submits Query batches to /v1/eval and decodes the shared
// Result wire encoding, so remote evaluation reads like a local
// Evaluator.DoBatch call — and it consumes the /v1/stream NDJSON cell
// frames as an iterator, so remote streaming reads like a local
// Evaluator.StreamBatch call.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strings"

	"probequorum"
	"probequorum/internal/probeserve"
)

// Client talks to one probeserved base URL.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient); use it to set timeouts or transports.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// New returns a client for the service at base, e.g.
// "http://localhost:8773".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Eval submits the query batch to /v1/eval and returns one Result per
// query, in order. Queries must name systems by Spec: a System value
// cannot cross the wire. Individually failed queries come back with
// Result.Error set, exactly as Evaluator.DoBatch reports them.
func (c *Client) Eval(ctx context.Context, queries []probequorum.Query) ([]*probequorum.Result, error) {
	for i, q := range queries {
		if q.System != nil {
			return nil, fmt.Errorf("client: query %d holds a System value; remote queries must name systems by Spec", i)
		}
	}
	body, err := json.Marshal(probeserve.EvalRequest{Queries: queries})
	if err != nil {
		return nil, fmt.Errorf("client: encode eval request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp probeserve.EvalResponse
	if err := c.do(req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(queries) {
		return nil, fmt.Errorf("client: got %d results for %d queries", len(resp.Results), len(queries))
	}
	return resp.Results, nil
}

// maxStreamLineBytes bounds one NDJSON frame the streaming reader will
// accept; a frame carrying a strategy-tree rendering is the largest
// legitimate line by far and fits comfortably. Oversized lines fail
// loudly instead of being split mid-JSON.
const maxStreamLineBytes = 8 << 20

// ErrStreamTruncated reports a /v1/stream response that ended without a
// terminal done or error frame: the transport failed mid-stream, so the
// cells received so far are a prefix, not the whole answer.
var ErrStreamTruncated = errors.New("client: stream ended without a terminal frame")

// StreamEval submits the query batch to /v1/stream and returns the cell
// stream as an iterator, each cell yielded as its NDJSON frame arrives —
// remote streaming reads like a local Evaluator.StreamBatch call, and
// probequorum.FoldCells folds the cells into the same Results /v1/eval
// would have answered. The terminal pair of a failed stream carries a
// non-nil error: the server's error frame, ErrStreamTruncated on a
// silent EOF, or the transport failure. Breaking out of the iteration
// closes the response body, which cancels the server-side evaluation.
func (c *Client) StreamEval(ctx context.Context, queries []probequorum.Query) iter.Seq2[probequorum.Cell, error] {
	return func(yield func(probequorum.Cell, error) bool) {
		for i, q := range queries {
			if q.System != nil {
				yield(probequorum.Cell{}, fmt.Errorf("client: query %d holds a System value; remote queries must name systems by Spec", i))
				return
			}
		}
		body, err := json.Marshal(probeserve.EvalRequest{Queries: queries})
		if err != nil {
			yield(probequorum.Cell{}, fmt.Errorf("client: encode stream request: %w", err))
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/stream", bytes.NewReader(body))
		if err != nil {
			yield(probequorum.Cell{}, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		res, err := c.hc.Do(req)
		if err != nil {
			yield(probequorum.Cell{}, err)
			return
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(io.LimitReader(res.Body, 1<<20))
			yield(probequorum.Cell{}, decodeError(res.StatusCode, data))
			return
		}

		sc := bufio.NewScanner(res.Body)
		sc.Buffer(make([]byte, 64<<10), maxStreamLineBytes)
		for sc.Scan() {
			line := sc.Bytes()
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var frame probeserve.StreamFrame
			if err := json.Unmarshal(line, &frame); err != nil {
				yield(probequorum.Cell{}, fmt.Errorf("client: decode stream frame: %w", err))
				return
			}
			switch {
			case frame.Error != "":
				yield(probequorum.Cell{}, fmt.Errorf("client: stream failed: %s", frame.Error))
				return
			case frame.Done != nil:
				return
			case frame.Cell != nil:
				if !yield(*frame.Cell, nil) {
					return
				}
			default:
				yield(probequorum.Cell{}, fmt.Errorf("client: empty stream frame %q", line))
				return
			}
		}
		if err := sc.Err(); err != nil {
			yield(probequorum.Cell{}, fmt.Errorf("client: read stream: %w", err))
			return
		}
		yield(probequorum.Cell{}, ErrStreamTruncated)
	}
}

// Systems returns the construction names registered on the server.
func (c *Client) Systems(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/systems", nil)
	if err != nil {
		return nil, err
	}
	var resp probeserve.SystemsResponse
	if err := c.do(req, &resp); err != nil {
		return nil, err
	}
	return resp.Specs, nil
}

// Render returns the server's ASCII rendering of the system named by the
// spec string.
func (c *Client) Render(ctx context.Context, spec string) (string, error) {
	u := c.base + "/v1/render?spec=" + url.QueryEscape(spec)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", decodeError(res.StatusCode, data)
	}
	return string(data), nil
}

// Health checks /healthz, returning nil when the service answers OK.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	io.Copy(io.Discard, io.LimitReader(res.Body, 1<<10))
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("client: health check returned %s", res.Status)
	}
	return nil
}

// maxResponseBytes bounds how much of a response the client will read.
// Reads that hit the bound fail loudly instead of silently truncating —
// a truncated JSON document would otherwise surface as a confusing
// decode error.
const maxResponseBytes = 64 << 20

// do executes the request and decodes the JSON answer into out, turning
// non-2xx answers into errors carrying the server's message.
func (c *Client) do(req *http.Request, out any) error {
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, maxResponseBytes+1))
	if err != nil {
		return err
	}
	if len(data) > maxResponseBytes {
		return fmt.Errorf("client: response exceeds %d bytes; split the batch", maxResponseBytes)
	}
	if res.StatusCode != http.StatusOK {
		return decodeError(res.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

func decodeError(status int, body []byte) error {
	var e probeserve.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("client: server returned %d: %s", status, e.Error)
	}
	return fmt.Errorf("client: server returned %d", status)
}
