package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"probequorum"
	"probequorum/client"
	"probequorum/internal/probeserve"
)

func newPair(t *testing.T) *client.Client {
	t.Helper()
	ts := httptest.NewServer(probeserve.New(nil).Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL)
}

func TestEvalRoundTrip(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()
	results, err := c.Eval(ctx, []probequorum.Query{
		{
			Spec:     "maj:7",
			Measures: []probequorum.Measure{probequorum.MeasurePC, probequorum.MeasurePPC, probequorum.MeasureAvailability},
			Ps:       []float64{0.5},
		},
		{Spec: "bogus:1", Measures: []probequorum.Measure{probequorum.MeasurePC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	maj := probequorum.MustParse("maj:7")
	pc, _ := probequorum.ProbeComplexity(maj)
	ppc, _ := probequorum.AverageProbeComplexity(maj, 0.5)
	avail := probequorum.Availability(maj, 0.5)
	r := results[0]
	if r.Error != "" || r.PC == nil || *r.PC != pc {
		t.Errorf("remote PC = %+v, want %d", r, pc)
	}
	if pt := r.Point(0.5); pt == nil || pt.PPC == nil || *pt.PPC != ppc || pt.Availability == nil || *pt.Availability != avail {
		t.Errorf("remote point = %+v, want ppc=%v avail=%v", r.Point(0.5), ppc, avail)
	}
	if results[1].Error == "" {
		t.Errorf("bad spec should fail in its Result: %+v", results[1])
	}
}

// TestEvalPlannerRoundTrip pins the PR 7 planner measures through the
// client: load, capacity and resilience of a read/write pair round-trip
// the wire bit-identically to the local façade, and the streamed cells
// match the local stream frame for frame.
func TestEvalPlannerRoundTrip(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()
	queries := []probequorum.Query{{
		Spec:          "grid:2x3",
		Measures:      []probequorum.Measure{probequorum.MeasureLoad, probequorum.MeasureCapacity, probequorum.MeasureResilience},
		ReadFractions: []float64{0.25, 0.75},
	}}
	results, err := c.Eval(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Error != "" {
		t.Fatalf("remote planner query failed: %s", r.Error)
	}
	sys := probequorum.MustParse("grid:2x3")
	wantRes, err := probequorum.Resilience(sys)
	if err != nil {
		t.Fatal(err)
	}
	if r.Resilience == nil || *r.Resilience != wantRes {
		t.Errorf("remote resilience = %+v, want %d", r.Resilience, wantRes)
	}
	if len(r.RWPoints) != 2 {
		t.Fatalf("got %d rw points, want 2", len(r.RWPoints))
	}
	for _, fr := range []float64{0.25, 0.75} {
		pt := r.RWPoint(fr)
		if pt == nil {
			t.Fatalf("no rw point at read fraction %v", fr)
		}
		w := probequorum.Workload{ReadFraction: fr}
		s, err := probequorum.OptimizeStrategy(sys, probequorum.StrategyOptions{Workload: w})
		if err != nil {
			t.Fatal(err)
		}
		load, err := s.Load(w)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Load == nil || *pt.Load != load || pt.Capacity == nil || *pt.Capacity != 1/load {
			t.Errorf("fr=%v: remote point %+v, want load=%v capacity=%v", fr, pt, load, 1/load)
		}
	}
	var remote, local []probequorum.Cell
	for cell, err := range c.StreamEval(ctx, queries) {
		if err != nil {
			t.Fatal(err)
		}
		remote = append(remote, cell)
	}
	for cell, err := range probequorum.NewEvaluator().StreamBatch(ctx, queries) {
		if err != nil {
			t.Fatal(err)
		}
		local = append(local, cell)
	}
	if len(remote) != len(local) {
		t.Fatalf("remote stream has %d cells, local %d", len(remote), len(local))
	}
	for i := range remote {
		rj, _ := json.Marshal(remote[i])
		lj, _ := json.Marshal(local[i])
		if string(rj) != string(lj) {
			t.Errorf("cell %d differs:\nremote %s\nlocal  %s", i, rj, lj)
		}
	}
}

func TestEvalRejectsSystemValues(t *testing.T) {
	c := newPair(t)
	sys := probequorum.MustParse("maj:3")
	_, err := c.Eval(context.Background(), []probequorum.Query{
		{System: sys, Measures: []probequorum.Measure{probequorum.MeasurePC}},
	})
	if err == nil || !strings.Contains(err.Error(), "Spec") {
		t.Errorf("err = %v, want a Spec-required error", err)
	}
}

func TestSystemsRenderHealth(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()
	specs, err := c.Systems(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := probequorum.SpecNames()
	if len(specs) != len(want) {
		t.Errorf("Systems = %v, want %v", specs, want)
	}
	art, err := c.Render(ctx, "maj:5")
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := probequorum.RenderSystem(probequorum.MustParse("maj:5"), nil)
	if art != direct {
		t.Errorf("Render = %q, want %q", art, direct)
	}
	if _, err := c.Render(ctx, "nope:1"); err == nil || !strings.Contains(err.Error(), "unknown construction") {
		t.Errorf("Render of bad spec: err = %v, want server message", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Errorf("Health: %v", err)
	}
}

func TestServerGone(t *testing.T) {
	ts := httptest.NewServer(probeserve.New(nil).Handler())
	c := client.New(ts.URL)
	ts.Close()
	if err := c.Health(context.Background()); err == nil {
		t.Error("Health against a closed server should fail")
	}
}

// TestStreamEvalMatchesLocal pins remote streaming against the local
// iterator: the cells StreamEval yields are exactly what a local
// StreamBatch produces (same canonical order, same values), and folding
// them reproduces the Eval results.
func TestStreamEvalMatchesLocal(t *testing.T) {
	c := newPair(t)
	queries := []probequorum.Query{
		{
			Spec:     "maj:9",
			Measures: []probequorum.Measure{probequorum.MeasurePC, probequorum.MeasurePPC, probequorum.MeasureEstimate},
			Ps:       []float64{0.2, 0.5},
			Trials:   1000,
			Seed:     7,
		},
		{Spec: "wheel:8", Measures: []probequorum.Measure{probequorum.MeasureAvailability}, Ps: []float64{0.3}},
	}
	var remote []probequorum.Cell
	for cell, err := range c.StreamEval(context.Background(), queries) {
		if err != nil {
			t.Fatalf("stream error after %d cells: %v", len(remote), err)
		}
		remote = append(remote, cell)
	}
	var local []probequorum.Cell
	for cell, err := range probequorum.NewEvaluator().StreamBatch(context.Background(), queries) {
		if err != nil {
			t.Fatal(err)
		}
		local = append(local, cell)
	}
	if len(remote) != len(local) {
		t.Fatalf("remote stream has %d cells, local %d", len(remote), len(local))
	}
	for i := range remote {
		rj, _ := json.Marshal(remote[i])
		lj, _ := json.Marshal(local[i])
		if string(rj) != string(lj) {
			t.Errorf("cell %d differs:\nremote %s\nlocal  %s", i, rj, lj)
		}
	}

	folded, err := probequorum.FoldCells(probequorum.CellSeq(remote), len(queries))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.Eval(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		fj, _ := json.Marshal(folded[i])
		dj, _ := json.Marshal(direct[i])
		if string(fj) != string(dj) {
			t.Errorf("query %d: folded stream != Eval:\n%s\n%s", i, fj, dj)
		}
	}
}

func TestStreamEvalRejectsSystemValues(t *testing.T) {
	c := newPair(t)
	var got error
	for _, err := range c.StreamEval(context.Background(), []probequorum.Query{
		{System: probequorum.MustParse("maj:3"), Measures: []probequorum.Measure{probequorum.MeasurePC}},
	}) {
		got = err
	}
	if got == nil || !strings.Contains(got.Error(), "Spec") {
		t.Errorf("err = %v, want a Spec-required error", got)
	}
}

// TestStreamEvalTerminalFrames pins the client's handling of the three
// stream endings: an error frame surfaces as the terminal iterator
// error, EOF without a terminal frame reports ErrStreamTruncated, and a
// line beyond the reader bound fails loudly instead of being split.
func TestStreamEvalTerminalFrames(t *testing.T) {
	cases := map[string]struct {
		body    string
		wantErr string
	}{
		"error frame": {
			body:    `{"cell":{"query":0,"value":0,"done":false}}` + "\n" + `{"error":"context canceled"}` + "\n",
			wantErr: "stream failed: context canceled",
		},
		"silent EOF": {
			body:    `{"cell":{"query":0,"value":0,"done":false}}` + "\n",
			wantErr: client.ErrStreamTruncated.Error(),
		},
		"empty frame": {
			body:    `{}` + "\n",
			wantErr: "empty stream frame",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/x-ndjson")
				io.WriteString(w, tc.body)
			}))
			defer ts.Close()
			var got error
			for _, err := range client.New(ts.URL).StreamEval(context.Background(), []probequorum.Query{
				{Spec: "maj:3", Measures: []probequorum.Measure{probequorum.MeasurePC}},
			}) {
				if err != nil {
					got = err
				}
			}
			if got == nil || !strings.Contains(got.Error(), tc.wantErr) {
				t.Errorf("err = %v, want containing %q", got, tc.wantErr)
			}
		})
	}
}

// TestStreamEvalBoundedLineReader feeds a frame far beyond the line
// bound; the iterator must fail with a read error rather than hang or
// mis-parse.
func TestStreamEvalBoundedLineReader(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"cell":{"query":0,"spec":"`))
		filler := bytes.Repeat([]byte("x"), 1<<20)
		for i := 0; i < 9; i++ {
			w.Write(filler)
		}
		w.Write([]byte(`","value":0,"done":false}}` + "\n"))
	}))
	defer ts.Close()
	var got error
	for _, err := range client.New(ts.URL).StreamEval(context.Background(), []probequorum.Query{
		{Spec: "maj:3", Measures: []probequorum.Measure{probequorum.MeasurePC}},
	}) {
		if err != nil {
			got = err
		}
	}
	if got == nil || !strings.Contains(got.Error(), "read stream") {
		t.Errorf("err = %v, want a bounded-read failure", got)
	}
}

// TestStreamEvalBreakCancelsServer breaks out of the iteration after
// the first cell; the deferred body close must cancel the server-side
// evaluation (observable as the shared session staying consistent) and
// later calls must work.
func TestStreamEvalBreakCancelsServer(t *testing.T) {
	c := newPair(t)
	queries := []probequorum.Query{{
		Spec:     "maj:11",
		Measures: []probequorum.Measure{probequorum.MeasurePC, probequorum.MeasurePPC},
		Ps:       []float64{0.1, 0.2, 0.3},
	}}
	seen := 0
	for _, err := range c.StreamEval(context.Background(), queries) {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		break
	}
	if seen != 1 {
		t.Fatalf("consumed %d cells, want 1", seen)
	}
	results, err := c.Eval(context.Background(), queries)
	if err != nil || results[0].Error != "" {
		t.Errorf("Eval after broken stream: results=%+v err=%v", results, err)
	}
}
