package client_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"probequorum"
	"probequorum/client"
	"probequorum/internal/probeserve"
)

func newPair(t *testing.T) *client.Client {
	t.Helper()
	ts := httptest.NewServer(probeserve.New(nil).Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL)
}

func TestEvalRoundTrip(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()
	results, err := c.Eval(ctx, []probequorum.Query{
		{
			Spec:     "maj:7",
			Measures: []probequorum.Measure{probequorum.MeasurePC, probequorum.MeasurePPC, probequorum.MeasureAvailability},
			Ps:       []float64{0.5},
		},
		{Spec: "bogus:1", Measures: []probequorum.Measure{probequorum.MeasurePC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	maj := probequorum.MustParse("maj:7")
	pc, _ := probequorum.ProbeComplexity(maj)
	ppc, _ := probequorum.AverageProbeComplexity(maj, 0.5)
	avail := probequorum.Availability(maj, 0.5)
	r := results[0]
	if r.Error != "" || r.PC == nil || *r.PC != pc {
		t.Errorf("remote PC = %+v, want %d", r, pc)
	}
	if pt := r.Point(0.5); pt == nil || pt.PPC == nil || *pt.PPC != ppc || pt.Availability == nil || *pt.Availability != avail {
		t.Errorf("remote point = %+v, want ppc=%v avail=%v", r.Point(0.5), ppc, avail)
	}
	if results[1].Error == "" {
		t.Errorf("bad spec should fail in its Result: %+v", results[1])
	}
}

func TestEvalRejectsSystemValues(t *testing.T) {
	c := newPair(t)
	sys := probequorum.MustParse("maj:3")
	_, err := c.Eval(context.Background(), []probequorum.Query{
		{System: sys, Measures: []probequorum.Measure{probequorum.MeasurePC}},
	})
	if err == nil || !strings.Contains(err.Error(), "Spec") {
		t.Errorf("err = %v, want a Spec-required error", err)
	}
}

func TestSystemsRenderHealth(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()
	specs, err := c.Systems(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := probequorum.SpecNames()
	if len(specs) != len(want) {
		t.Errorf("Systems = %v, want %v", specs, want)
	}
	art, err := c.Render(ctx, "maj:5")
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := probequorum.RenderSystem(probequorum.MustParse("maj:5"), nil)
	if art != direct {
		t.Errorf("Render = %q, want %q", art, direct)
	}
	if _, err := c.Render(ctx, "nope:1"); err == nil || !strings.Contains(err.Error(), "unknown construction") {
		t.Errorf("Render of bad spec: err = %v, want server message", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Errorf("Health: %v", err)
	}
}

func TestServerGone(t *testing.T) {
	ts := httptest.NewServer(probeserve.New(nil).Handler())
	c := client.New(ts.URL)
	ts.Close()
	if err := c.Health(context.Background()); err == nil {
		t.Error("Health against a closed server should fail")
	}
}
