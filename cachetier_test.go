package probequorum_test

// Tests for the persistent artifact store and approximate-answer cache
// tiers (PR 9): a second process sharing a store directory answers
// bit-identically to the first with zero artifact builds, fabricated
// large-n records serve without any compute at all, tolerance-zero
// queries bypass the approximate tier bit-identically, and every
// approximate answer carries an error bound within the caller's
// tolerance. All of these run under -race in the cache-persistence CI
// gate.

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"

	"probequorum"
	"probequorum/internal/spec"
	"probequorum/internal/store"
)

// warmSpecs is one spec per registered construction form at a size
// whose exact artifacts compute in milliseconds (every universe is at
// most 14 elements), plus the three read/write pair forms.
var warmSpecs = []string{
	"maj:13", "wheel:12", "cw:1,3,5", "triang:4", "tree:2", "hqs:2",
	"vote:5,3,1,1,1,1,1", "recmaj:3x2", "rw:maj:9", "rowa:6", "grid:3x3",
}

// rwSpecs are the pair forms whose optimized strategies also persist.
var rwSpecs = map[string]bool{"rw:maj:9": true, "rowa:6": true, "grid:3x3": true}

// totalBuilds sums the per-kind build counters of a session.
func totalBuilds(e *probequorum.Evaluator) uint64 {
	var n uint64
	for _, c := range e.Stats().Builds {
		n += c
	}
	return n
}

// TestWarmStartBitIdenticalEveryConstruction is the tentpole contract:
// session A computes pc, ppc, availability and resilience (plus an
// optimized strategy for the pair forms) for every registered
// construction into a store directory; session B — a fresh Evaluator
// with a fresh handle on the same directory, the restarted-process
// scenario — must answer every measure that A answered with the exact
// same bits while building nothing.
func TestWarmStartBitIdenticalEveryConstruction(t *testing.T) {
	const p = 0.3
	opts := probequorum.StrategyOptions{Workload: probequorum.Workload{ReadFraction: 0.75}}
	dir := t.TempDir()
	ctx := context.Background()

	type measured struct {
		pc, resilience       int
		ppc, avail           float64
		okPC, okPPC          bool
		okAvail, okRes       bool
		readProbs, writeProb []float64
	}
	got := map[string]*measured{}

	stA, err := probequorum.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	evalA := probequorum.NewEvaluator(probequorum.WithStore(stA))
	for _, sp := range warmSpecs {
		sys, err := probequorum.Parse(sp)
		if err != nil {
			t.Fatalf("parse %s: %v", sp, err)
		}
		m := &measured{}
		if v, err := evalA.ProbeComplexity(sys); err == nil {
			m.pc, m.okPC = v, true
		}
		if v, err := evalA.AverageProbeComplexity(sys, p); err == nil {
			m.ppc, m.okPPC = v, true
		}
		if v, err := evalA.AvailabilityCtx(ctx, sys, p); err == nil {
			m.avail, m.okAvail = v, true
		}
		if v, err := evalA.ResilienceCtx(ctx, sys); err == nil {
			m.resilience, m.okRes = v, true
		}
		if rwSpecs[sp] {
			s, err := evalA.OptimalStrategy(sys, opts)
			if err != nil {
				t.Fatalf("optimize %s: %v", sp, err)
			}
			m.readProbs = append([]float64(nil), s.ReadProbs()...)
			m.writeProb = append([]float64(nil), s.WriteProbs()...)
		}
		if !m.okPC && !m.okPPC && !m.okAvail && !m.okRes {
			t.Fatalf("%s answered no measure at all in the cold session", sp)
		}
		got[sp] = m
	}
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}

	stB, err := probequorum.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	evalB := probequorum.NewEvaluator(probequorum.WithStore(stB))
	for _, sp := range warmSpecs {
		sys := probequorum.MustParse(sp)
		m := got[sp]
		if m.okPC {
			if v, err := evalB.ProbeComplexity(sys); err != nil || v != m.pc {
				t.Errorf("%s warm pc = %d, %v; cold computed %d", sp, v, err, m.pc)
			}
		}
		if m.okPPC {
			v, err := evalB.AverageProbeComplexity(sys, p)
			if err != nil || math.Float64bits(v) != math.Float64bits(m.ppc) {
				t.Errorf("%s warm ppc = %v, %v; cold computed %v", sp, v, err, m.ppc)
			}
		}
		if m.okAvail {
			v, err := evalB.AvailabilityCtx(ctx, sys, p)
			if err != nil || math.Float64bits(v) != math.Float64bits(m.avail) {
				t.Errorf("%s warm availability = %v, %v; cold computed %v", sp, v, err, m.avail)
			}
		}
		if m.okRes {
			if v, err := evalB.ResilienceCtx(ctx, sys); err != nil || v != m.resilience {
				t.Errorf("%s warm resilience = %d, %v; cold computed %d", sp, v, err, m.resilience)
			}
		}
		if rwSpecs[sp] {
			s, err := evalB.OptimalStrategy(sys, opts)
			if err != nil {
				t.Fatalf("warm optimize %s: %v", sp, err)
			}
			for i, rp := range s.ReadProbs() {
				if math.Float64bits(rp) != math.Float64bits(m.readProbs[i]) {
					t.Errorf("%s warm read prob %d = %v, cold %v", sp, i, rp, m.readProbs[i])
				}
			}
			for i, wp := range s.WriteProbs() {
				if math.Float64bits(wp) != math.Float64bits(m.writeProb[i]) {
					t.Errorf("%s warm write prob %d = %v, cold %v", sp, i, wp, m.writeProb[i])
				}
			}
		}
	}
	if n := totalBuilds(evalB); n != 0 {
		t.Errorf("the warm session ran %d artifact builds, want 0: %v", n, evalB.Stats().Builds)
	}
	if misses := evalB.Stats().Misses["store"]; misses != 0 {
		t.Errorf("the warm session missed the store %d times, want 0", misses)
	}
}

// TestWarmStartSpotCheckMaj1025 covers the wide regime the exhaustive
// sweep cannot: resilience of maj:1025 answers from its closed form in
// session A, persists, and session B serves it from disk with zero
// builds.
func TestWarmStartSpotCheckMaj1025(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sys := probequorum.MustParse("maj:1025")

	stA, err := probequorum.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	evalA := probequorum.NewEvaluator(probequorum.WithStore(stA))
	want, err := evalA.ResilienceCtx(ctx, sys)
	if err != nil {
		t.Fatal(err)
	}
	stA.Close()

	stB, err := probequorum.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	evalB := probequorum.NewEvaluator(probequorum.WithStore(stB))
	v, err := evalB.ResilienceCtx(ctx, sys)
	if err != nil || v != want {
		t.Fatalf("warm resilience(maj:1025) = %d, %v; cold computed %d", v, err, want)
	}
	if n := totalBuilds(evalB); n != 0 {
		t.Errorf("the warm session ran %d builds, want 0: %v", n, evalB.Stats().Builds)
	}
}

// TestStoreServesN18WithoutCompute pins the acceptance scenario at a
// size whose exact DP costs about a minute of single-core compute:
// records fabricated through the store API — carrying the real
// wheel:18 answers, measured once offline — serve exact pc and ppc
// queries with Builds flat. The env-gated heavy test below verifies
// the same numbers end to end by actually computing them.
func TestStoreServesN18WithoutCompute(t *testing.T) {
	const (
		wheel18PC  = 18
		wheel18PPC = 2.997673749923706 // OptimalPPC(wheel:18, 0.3), measured offline
	)
	sys := probequorum.MustParse("wheel:18")
	specStr, ok := spec.Of(sys)
	if !ok {
		t.Fatal("wheel:18 has no canonical spec")
	}

	dir := t.TempDir()
	st, err := probequorum.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutInt("pc", specStr, wheel18PC); err != nil {
		t.Fatal(err)
	}
	if err := st.PutFloat("ppc", store.ParamKey(specStr, 0.3), wheel18PPC); err != nil {
		t.Fatal(err)
	}

	eval := probequorum.NewEvaluator(probequorum.WithStore(st))
	pc, err := eval.ProbeComplexity(sys)
	if err != nil || pc != wheel18PC {
		t.Fatalf("pc(wheel:18) = %d, %v; want %d from the store", pc, err, wheel18PC)
	}
	ppc, err := eval.AverageProbeComplexity(sys, 0.3)
	if err != nil || math.Float64bits(ppc) != math.Float64bits(wheel18PPC) {
		t.Fatalf("ppc(wheel:18, 0.3) = %v, %v; want %v from the store", ppc, err, wheel18PPC)
	}
	if n := totalBuilds(eval); n != 0 {
		t.Fatalf("n=18 answers ran %d builds, want 0: %v", n, eval.Stats().Builds)
	}
	st2 := eval.Stats()
	if st2.Hits["store"] != 2 {
		t.Errorf("store hits = %d, want 2", st2.Hits["store"])
	}
}

// TestHeavyWheel18RoundTrip is the end-to-end version of the test
// above: actually run the ~minute-per-measure wheel:18 DPs, persist,
// and warm-start. Gated behind PROBEQUORUM_HEAVY=1 so routine runs
// stay fast.
func TestHeavyWheel18RoundTrip(t *testing.T) {
	if os.Getenv("PROBEQUORUM_HEAVY") == "" {
		t.Skip("set PROBEQUORUM_HEAVY=1 to run the wheel:18 exact DPs (minutes of single-core compute)")
	}
	dir := t.TempDir()
	sys := probequorum.MustParse("wheel:18")

	stA, err := probequorum.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	evalA := probequorum.NewEvaluator(probequorum.WithStore(stA))
	pcA, err := evalA.ProbeComplexity(sys)
	if err != nil {
		t.Fatal(err)
	}
	ppcA, err := evalA.AverageProbeComplexity(sys, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	stA.Close()

	stB, err := probequorum.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	evalB := probequorum.NewEvaluator(probequorum.WithStore(stB))
	if v, err := evalB.ProbeComplexity(sys); err != nil || v != pcA {
		t.Fatalf("warm pc = %d, %v; cold %d", v, err, pcA)
	}
	if v, err := evalB.AverageProbeComplexity(sys, 0.3); err != nil || math.Float64bits(v) != math.Float64bits(ppcA) {
		t.Fatalf("warm ppc = %v, %v; cold %v", v, err, ppcA)
	}
	if n := totalBuilds(evalB); n != 0 {
		t.Fatalf("warm session ran %d builds, want 0", n)
	}
}

// ppcQuery is one exact-ppc query of the approximate-tier tests.
func ppcQuery(sp string, p, tol float64) probequorum.Query {
	return probequorum.Query{
		Spec:      sp,
		Measures:  []probequorum.Measure{probequorum.MeasurePPC},
		Ps:        []float64{p},
		Tolerance: tol,
	}
}

// TestApproxServesWithinTolerance seeds the approximate cache with
// exact sample points and checks the contract of a served answer: the
// point carries an ApproxNote, the declared bound respects the
// caller's tolerance, and the true error — against a separately
// computed exact answer — stays within the declared bound.
func TestApproxServesWithinTolerance(t *testing.T) {
	const sp = "maj:11"
	ctx := context.Background()
	eval := probequorum.NewEvaluator(probequorum.WithApprox(probequorum.NewApproxCache()))

	// Exact solves at the bracket endpoints feed the cache. The bracket
	// spread — ppc(maj:11) moves about 0.17 between these ps — is the
	// served bound, so it must sit inside the tolerance below.
	for _, p := range []float64{0.29, 0.31} {
		if _, err := eval.Do(ctx, ppcQuery(sp, p, 0)); err != nil {
			t.Fatal(err)
		}
	}
	const tol = 0.25
	res, err := eval.Do(ctx, ppcQuery(sp, 0.30, tol))
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	if len(res.Points) != 1 || res.Points[0].PPC == nil {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	pt := res.Points[0]
	if len(pt.Approx) != 1 {
		t.Fatalf("approximate answer carries %d notes, want 1: %+v", len(pt.Approx), pt)
	}
	note := pt.Approx[0]
	if note.Measure != probequorum.MeasurePPC || note.P != 0.30 {
		t.Errorf("note identifies %s at p=%v, want ppc at 0.3", note.Measure, note.P)
	}
	if note.Bound < 0 || note.Bound > tol {
		t.Errorf("declared bound %v exceeds the tolerance %v", note.Bound, tol)
	}
	if hits := eval.Stats().Hits["approx"]; hits != 1 {
		t.Errorf("approx hits = %d, want 1", hits)
	}

	// The declared bound must hold against the true exact answer.
	exactEval := probequorum.NewEvaluator()
	exact, err := exactEval.AverageProbeComplexity(probequorum.MustParse(sp), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(*pt.PPC - exact); diff > note.Bound {
		t.Errorf("true error %v exceeds the declared bound %v", diff, note.Bound)
	}
}

// TestMemoOutranksApprox pins the tier lookup order memo → approx →
// store → compute: a tolerant query whose exact answer is already in
// the session memo gets the bit-exact value with no approximation note
// — the approx tier is never consulted, so the hit is attributed to the
// memo tier, and an interpolation can never shadow a memoized point.
func TestMemoOutranksApprox(t *testing.T) {
	const sp, p = "maj:11", 0.29
	ctx := context.Background()
	eval := probequorum.NewEvaluator(probequorum.WithApprox(probequorum.NewApproxCache()))

	// The exact solve memoizes ppc(p) and seeds the approx series with
	// the same point, so both tiers could answer the re-query below.
	exact, err := eval.Do(ctx, ppcQuery(sp, p, 0))
	if err != nil {
		t.Fatal(err)
	}
	before := eval.Stats()

	res, err := eval.Do(ctx, ppcQuery(sp, p, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].PPC == nil {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	if notes := res.Points[0].Approx; len(notes) != 0 {
		t.Errorf("memoized answer served approximately: %+v", notes)
	}
	if math.Float64bits(*res.Points[0].PPC) != math.Float64bits(*exact.Points[0].PPC) {
		t.Errorf("tolerant re-query %v differs from the memoized exact %v",
			*res.Points[0].PPC, *exact.Points[0].PPC)
	}
	after := eval.Stats()
	if after.Hits["approx"] != before.Hits["approx"] || after.Misses["approx"] != before.Misses["approx"] {
		t.Errorf("memoized point consulted the approx tier: hits %d→%d, misses %d→%d",
			before.Hits["approx"], after.Hits["approx"], before.Misses["approx"], after.Misses["approx"])
	}
	if after.Hits["memo"] != before.Hits["memo"]+1 {
		t.Errorf("memo hits %d→%d, want one more", before.Hits["memo"], after.Hits["memo"])
	}
	if after.Builds["ppc"] != before.Builds["ppc"] {
		t.Errorf("memoized point rebuilt: %d→%d", before.Builds["ppc"], after.Builds["ppc"])
	}
}

// TestToleranceZeroBypassesApprox pins the exactness contract: with a
// populated approximate cache, a tolerance-zero query never consults
// it — the answer is bit-identical to a cache-free session's and
// carries no approximation note.
func TestToleranceZeroBypassesApprox(t *testing.T) {
	const sp = "maj:11"
	ctx := context.Background()
	eval := probequorum.NewEvaluator(probequorum.WithApprox(probequorum.NewApproxCache()))
	for _, p := range []float64{0.29, 0.31} {
		if _, err := eval.Do(ctx, ppcQuery(sp, p, 0)); err != nil {
			t.Fatal(err)
		}
	}

	res, err := eval.Do(ctx, ppcQuery(sp, 0.30, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].PPC == nil {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	if len(res.Points[0].Approx) != 0 {
		t.Errorf("tolerance-zero answer carries approximation notes: %+v", res.Points[0].Approx)
	}
	stats := eval.Stats()
	if stats.Hits["approx"] != 0 || stats.Misses["approx"] != 0 {
		t.Errorf("tolerance-zero query touched the approx tier: hits %d, misses %d",
			stats.Hits["approx"], stats.Misses["approx"])
	}

	plain := probequorum.NewEvaluator()
	want, err := plain.AverageProbeComplexity(probequorum.MustParse(sp), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(*res.Points[0].PPC) != math.Float64bits(want) {
		t.Errorf("tolerance-zero answer %v differs from the cache-free session's %v",
			*res.Points[0].PPC, want)
	}
}

// TestEvalStatsGoldenShape pins the wire encoding of the extended
// session counters: the four per-tier maps are always present (empty
// maps encode as {}, never null), so dashboards and the admin endpoint
// can rely on the shape. The scenario is two identical pc queries on a
// fresh store-free session: the first builds (memo miss), the second
// is a memo hit.
func TestEvalStatsGoldenShape(t *testing.T) {
	eval := probequorum.NewEvaluator()
	sys := probequorum.MustParse("maj:5")
	for i := 0; i < 2; i++ {
		if _, err := eval.ProbeComplexity(sys); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(eval.Stats())
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"builds":{"pc":1,"table":1},"coalesced":{},"hits":{"memo":1},"misses":{"memo":2}}`
	if string(data) != golden {
		t.Errorf("EvalStats encoding drifted:\n got %s\nwant %s", data, golden)
	}

	var decoded probequorum.EvalStats
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Builds["pc"] != 1 || decoded.Hits["memo"] != 1 {
		t.Errorf("EvalStats did not round-trip: %+v", decoded)
	}
}
