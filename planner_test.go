package probequorum_test

// Planner property tests at the façade level: the exact optimizer never
// loses to the uniform baseline on ANY registered construction, the
// read/write duality check rejects bad explicit pairs, and — the session
// caching contract — optimized strategies and resilience are memoized
// per Evaluator, pinned by the Stats() build counters. These run under
// -race in the CI planner gate.

import (
	"context"
	"testing"

	"probequorum"
)

// smallInstance maps every registered construction name to a small
// buildable instance. The test fails if a registered name is missing, so
// new constructions must opt in (or be explicitly skipped) here.
var smallInstance = map[string]string{
	"maj":      "maj:5",
	"wheel":    "wheel:6",
	"cw":       "cw:1,3,2",
	"triang":   "triang:3",
	"tree":     "tree:2",
	"hqs":      "hqs:2",
	"vote":     "vote:3,2,2,1,1",
	"recmaj":   "recmaj:3x1",
	"explicit": "", // not buildable from a spec by design
	"rw":       "rw:maj:5",
	"rowa":     "rowa:5",
	"grid":     "grid:2x3",
}

// The LP optimizer is exact: at every read fraction its strategy load is
// at most the uniform baseline's, for every registered construction.
func TestOptimizedAtMostUniform(t *testing.T) {
	// Names registered by OTHER TESTS in this binary (e.g. "third" from
	// api_test.go) are skipped — the registry is mutable — but every
	// built-in construction must be in the map and every mapped name must
	// still be registered, so the map tracks the shipped registry.
	registered := make(map[string]bool)
	for _, name := range probequorum.SpecNames() {
		registered[name] = true
	}
	for name, inst := range smallInstance {
		if !registered[name] {
			t.Fatalf("construction %q in the instance map is not registered", name)
		}
		if inst == "" {
			continue
		}
		t.Run(inst, func(t *testing.T) {
			sys, err := probequorum.Parse(inst)
			if err != nil {
				t.Fatal(err)
			}
			for _, fr := range []float64{0, 0.25, 0.5, 0.75, 1} {
				opts := probequorum.StrategyOptions{Workload: probequorum.Workload{ReadFraction: fr}}
				uni, err := probequorum.UniformStrategy(sys, opts)
				if err != nil {
					t.Fatal(err)
				}
				opt, err := probequorum.OptimizeStrategy(sys, opts)
				if err != nil {
					t.Fatal(err)
				}
				ul, err := uni.Load(opts.Workload)
				if err != nil {
					t.Fatal(err)
				}
				ol, err := opt.Load(opts.Workload)
				if err != nil {
					t.Fatal(err)
				}
				if ol > ul+1e-9 {
					t.Errorf("fr=%v: optimized load %v exceeds uniform %v", fr, ol, ul)
				}
			}
		})
	}
}

// An Evaluator memoizes optimized strategies per (system, options key)
// and resilience per system: a second identical planner query answers
// from the session cache without a new build. Pinned through Stats() —
// the acceptance check for "second plan of the same spec hits the memo".
func TestStrategyMemoizedPerSession(t *testing.T) {
	eval := probequorum.NewEvaluator()
	ctx := context.Background()
	q := probequorum.Query{
		Spec:          "grid:2x3",
		Measures:      []probequorum.Measure{probequorum.MeasureLoad, probequorum.MeasureCapacity, probequorum.MeasureResilience},
		ReadFractions: []float64{0.25, 0.75},
	}
	first, err := eval.Do(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	cold := eval.Stats()
	if got := cold.Builds["strategy"]; got != 2 {
		t.Fatalf("cold query built %d strategies, want 2 (one per read fraction)", got)
	}
	if got := cold.Builds["resilience"]; got != 1 {
		t.Fatalf("cold query ran %d resilience scans, want 1", got)
	}
	second, err := eval.Do(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	warm := eval.Stats()
	if warm.Builds["strategy"] != cold.Builds["strategy"] {
		t.Errorf("second identical query built strategies again: %d -> %d",
			cold.Builds["strategy"], warm.Builds["strategy"])
	}
	if warm.Builds["resilience"] != cold.Builds["resilience"] {
		t.Errorf("second identical query rescanned resilience: %d -> %d",
			cold.Builds["resilience"], warm.Builds["resilience"])
	}
	for i, p := range first.RWPoints {
		w := second.RWPoints[i]
		if p.Load == nil || w.Load == nil || *p.Load != *w.Load || *p.Capacity != *w.Capacity {
			t.Errorf("point %d: warm result differs from cold: %+v vs %+v", i, p, w)
		}
	}
	// A different workload is a different artifact: the memo keys on the
	// options, not just the system.
	q.ReadFractions = []float64{0.5}
	if _, err := eval.Do(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := eval.Stats().Builds["strategy"]; got != 3 {
		t.Errorf("new read fraction should build exactly one more strategy: got %d builds, want 3", got)
	}
}

// The façade's explicit-pair constructor enforces read/write duality.
func TestNewReadWritePairDuality(t *testing.T) {
	reads := []*probequorum.Set{probequorum.SetOf(4, 0, 1), probequorum.SetOf(4, 2, 3)}
	writes := []*probequorum.Set{probequorum.SetOf(4, 0, 2)}
	if _, err := probequorum.NewReadWritePair("quad", 4, reads, writes); err != nil {
		t.Fatalf("dual pair rejected: %v", err)
	}
	badWrites := []*probequorum.Set{probequorum.SetOf(4, 0)}
	if _, err := probequorum.NewReadWritePair("bad", 4, reads, badWrites); err == nil {
		t.Fatal("non-dual pair accepted: write {0} misses read {2,3}")
	}
	if err := probequorum.CheckDuality(probequorum.MustParse("maj:5"), probequorum.MustParse("maj:5")); err != nil {
		t.Errorf("maj:5 is self-dual, got %v", err)
	}
}

// Façade surface smoke: self-pairing, the Naor-Wool bound, the iterative
// balancer's certified gap, and f-resilient quorum extraction.
func TestPlannerFacadeSurface(t *testing.T) {
	maj := probequorum.MustParse("maj:5")
	pair := probequorum.SelfPair(maj)
	if rw := probequorum.AsReadWrite(pair); rw != probequorum.ReadWriteSystem(pair) {
		t.Error("AsReadWrite re-wrapped an existing pair")
	}
	if lb := probequorum.NaorWoolLowerBound(maj); lb != 3.0/5.0 {
		t.Errorf("NaorWoolLowerBound(maj:5) = %v, want 0.6", lb)
	}
	s, gap, err := probequorum.BalanceLoad(maj, 5000, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Load(probequorum.Workload{ReadFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if gap < 0 || l < 3.0/5.0-1e-9 || l > 3.0/5.0+gap+1e-9 {
		t.Errorf("balanced load %v with gap %v not certified around 0.6", l, gap)
	}
	rq, err := probequorum.ResilientQuorums(context.Background(), maj, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 1-resilient set of maj:5 must keep 3 live nodes after any single
	// failure, so every minimal one has exactly 4 elements.
	if len(rq) == 0 {
		t.Fatal("maj:5 has no 1-resilient quorums")
	}
	for _, q := range rq {
		if q.Count() != 4 {
			t.Errorf("1-resilient quorum %v has %d elements, want 4", q, q.Count())
		}
	}
	res, err := probequorum.Resilience(maj)
	if err != nil {
		t.Fatal(err)
	}
	if res != 2 {
		t.Errorf("Resilience(maj:5) = %d, want 2", res)
	}
}
