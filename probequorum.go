// Package probequorum is a library for building, probing and measuring
// quorum systems under processor failures, reproducing Hassin & Peleg,
// "Average probe complexity in quorum systems" (PODC 2001 / JCSS 2006).
//
// A quorum system is a family of pairwise intersecting subsets of a
// universe of processors. When processors fail, a client must find a
// witness before acting: either a live (green) quorum or — for a
// nondominated coterie — a failed (red) quorum proving that no live
// quorum exists. This package provides:
//
//   - the classic nondominated coterie constructions: Majority, Wheel,
//     Crumbling Walls (with Triang), the Tree system and the Hierarchical
//     Quorum System (HQS);
//   - the paper's probing algorithms for the probabilistic failure model
//     and the randomized worst-case model, behind FindWitness and
//     FindWitnessRandomized;
//   - exact measures: availability F_p, worst-case probe complexity PC,
//     probabilistic probe complexity PPC_p (exact for small universes),
//     and expected probe counts of the built-in strategies;
//   - a query-oriented evaluation API: a Query names a system, a measure
//     set and a p grid; Evaluator.Do and Evaluator.DoBatch execute
//     queries with context cancellation against cached per-system
//     artifacts and answer with JSON-stable Results — the same path
//     cmd/probeserved serves over HTTP and the client package consumes;
//   - a simulated fail-stop cluster with quorum-replicated registers and
//     quorum-based mutual exclusion built on witness search.
//
// See DESIGN.md for the system inventory and the Query API, and
// EXPERIMENTS.md for the reproduction of every table and figure of the
// paper.
package probequorum

import (
	"fmt"
	"math/rand/v2"

	"probequorum/internal/bitset"
	"probequorum/internal/cluster"
	"probequorum/internal/coloring"
	"probequorum/internal/core"
	"probequorum/internal/probe"
	"probequorum/internal/quorum"
	"probequorum/internal/render"
	"probequorum/internal/spec"
	"probequorum/internal/strategy"
	"probequorum/internal/systems"
)

// Core abstractions, re-exported from the internal packages.
type (
	// System is a quorum system over the universe {0, ..., Size()-1}.
	System = quorum.System
	// MaskSystem is the word-level fast path of a system whose universe
	// fits one uint64: superset tests against precomputed quorum masks
	// with zero allocation. All built-in constructions implement it.
	MaskSystem = quorum.MaskSystem
	// WideMaskSystem is the wide-universe mask capability: the
	// characteristic function evaluated on a []uint64 wide mask, scaling
	// every hot path to universes of up to 4096 elements. All built-in
	// constructions implement it natively at every size.
	WideMaskSystem = quorum.WideMaskSystem
	// BoundError is the typed error of every engine bound: it names the
	// operation, the bound, the requested size and — when raised through
	// the Evaluator — the measures still available at that size.
	BoundError = quorum.BoundError
	// BudgetError reports a refused enumeration-based mask adaptation
	// (see quorum.EnumerationBudget).
	BudgetError = quorum.BudgetError
	// Finder locates quorums inside an allowed element set.
	Finder = quorum.Finder
	// Prober is the capability of systems that carry their own
	// deterministic witness-search strategy; FindWitness dispatches on it.
	Prober = probe.Prober
	// RandomizedProber is the capability of systems with their own
	// randomized worst-case strategy; FindWitnessRandomized dispatches on
	// it.
	RandomizedProber = probe.RandomizedProber
	// WordsProber is the wide-universe probing capability: the same
	// deterministic strategy probing a word-buffer oracle with no
	// per-probe allocation; the estimate measure dispatches on it.
	WordsProber = probe.WordsProber
	// RandomizedWordsProber is the wide-universe form of
	// RandomizedProber.
	RandomizedWordsProber = probe.RandomizedWordsProber
	// ExactExpectation is the capability of systems with a closed-form
	// expected probe count under IID(p); ExpectedProbes dispatches on it.
	ExactExpectation = quorum.ExactExpectation
	// ExactAvailability is the capability of systems with a closed-form
	// failure probability F_p; Availability dispatches on it.
	ExactAvailability = quorum.ExactAvailability
	// Renderer is the capability of systems that draw their own ASCII
	// layout; RenderSystem dispatches on it.
	Renderer = quorum.Renderer
	// Specced is the capability of systems that report a canonical spec
	// string (see Parse).
	Specced = quorum.Specced
	// WitnessTable is the dense 2^n-bit characteristic function of a
	// system, the artifact Evaluator sessions cache across measures.
	WitnessTable = quorum.WitnessTable
	// Set is a set of universe elements.
	Set = bitset.Set
	// Color is the probed state of an element: Green (live) or Red
	// (failed).
	Color = coloring.Color
	// Coloring is a full failure pattern.
	Coloring = coloring.Coloring
	// Witness is a monochromatic quorum: the output of a probe strategy.
	Witness = probe.Witness
	// Oracle reveals element colors one probe at a time.
	Oracle = probe.Oracle
	// WordsOracle is the wide-universe oracle: coloring, probe log and
	// witness scratch all live in reusable word buffers.
	WordsOracle = probe.WordsOracle
	// WordsWitness is a monochromatic quorum as a wide mask, aliasing
	// oracle arena memory until the next Reset.
	WordsWitness = probe.WordsWitness
	// StrategyNode is a node of an explicit probe strategy (decision)
	// tree.
	StrategyNode = strategy.Node

	// Majority is the majority system over an odd universe.
	Majority = systems.Maj
	// Wheel is the hub-and-rim system.
	Wheel = systems.Wheel
	// CrumblingWall is the (n1, ..., nk)-CW family, including Triang.
	CrumblingWall = systems.CW
	// TreeSystem is the binary-tree coterie of Agrawal & El-Abbadi.
	TreeSystem = systems.Tree
	// HQS is Kumar's hierarchical quorum system.
	HQS = systems.HQS
	// Vote is a weighted-voting system (Thomas-style), generalizing
	// Majority and subsuming the Wheel.
	Vote = systems.Vote
	// RecMaj is the recursive m-ary majority system; RecMaj(3, h) is the
	// HQS.
	RecMaj = systems.RecMaj
	// ExplicitSystem is a quorum system given by an explicit list of
	// minimal quorums — the natural representation for ad-hoc systems.
	ExplicitSystem = quorum.Explicit

	// Cluster is a simulated set of fail-stop processors.
	Cluster = cluster.Cluster
	// Register is a quorum-replicated read/write register.
	Register = cluster.Register
	// DistMutex is quorum-based distributed mutual exclusion.
	DistMutex = cluster.Mutex
)

// Element colors.
const (
	Green = coloring.Green
	Red   = coloring.Red
)

// Cluster operation errors.
var (
	ErrNoLiveQuorum = cluster.ErrNoLiveQuorum
	ErrContended    = cluster.ErrContended
)

// NewMajority returns the majority system over n (odd) elements.
func NewMajority(n int) (*Majority, error) { return systems.NewMaj(n) }

// NewWheel returns the wheel system over n >= 3 elements.
func NewWheel(n int) (*Wheel, error) { return systems.NewWheel(n) }

// NewCrumblingWall returns the (widths[0], ..., widths[k-1])-CW system.
func NewCrumblingWall(widths []int) (*CrumblingWall, error) { return systems.NewCW(widths) }

// NewTriang returns the Triang system with k rows (row i has width i).
func NewTriang(k int) (*CrumblingWall, error) { return systems.NewTriang(k) }

// NewTree returns the tree system over a complete binary tree of the given
// height.
func NewTree(height int) (*TreeSystem, error) { return systems.NewTree(height) }

// NewHQS returns the hierarchical quorum system of the given height.
func NewHQS(height int) (*HQS, error) { return systems.NewHQS(height) }

// NewVote returns the weighted-voting system for the given positive
// weights (odd total).
func NewVote(weights []int) (*Vote, error) { return systems.NewVote(weights) }

// NewRecMaj returns the recursive m-ary majority system of the given
// height (m odd).
func NewRecMaj(m, height int) (*RecMaj, error) { return systems.NewRecMaj(m, height) }

// NewExplicit builds a system over n elements from an explicit list of
// minimal quorums (validated for intersection and minimality). Explicit
// systems take the generic probing and availability fallbacks; they
// cannot be rebuilt through Parse.
func NewExplicit(name string, n int, quorums []*Set) (*ExplicitSystem, error) {
	return quorum.NewExplicit(name, n, quorums)
}

// Parse builds a system from a declarative spec string: "maj:13",
// "wheel:8", "cw:1,3,2", "triang:5", "tree:3", "hqs:2",
// "vote:3,1,1,1,1" or "recmaj:3x2". Constructions registered through
// RegisterSpec parse the same way. Explicit systems cannot be rebuilt
// from a string, so "explicit:..." returns a descriptive error. Every
// built-in round-trips: Parse(s).(Specced).Spec() is the canonical form
// of s.
func Parse(s string) (System, error) { return spec.Parse(s) }

// MustParse is Parse for statically known specs; it panics on error.
func MustParse(s string) System { return spec.MustParse(s) }

// SpecOf returns the canonical spec string of the system via the Specced
// capability, and whether the system has one.
func SpecOf(sys System) (string, bool) { return spec.Of(sys) }

// SpecNames returns the registered construction names in sorted order.
func SpecNames() []string { return spec.Names() }

// RegisterSpec adds a construction to the spec registry under the given
// name, making it buildable through Parse ("name:args"). It panics on
// duplicate or malformed names and on a nil builder.
func RegisterSpec(name string, build func(arg string) (System, error)) {
	if build == nil {
		// Check here: the wrapping closure below would otherwise hide the
		// nil from spec.Register's guard until Parse time.
		panic(fmt.Sprintf("probequorum: nil spec builder for %q", name))
	}
	spec.Register(name, func(arg string) (quorum.System, error) { return build(arg) })
}

// Compose builds the coterie composition of an outer system with one inner
// system per outer element; composing nondominated coteries yields a
// nondominated coterie. The HQS is Compose(Maj3, [Maj3, Maj3, Maj3])
// applied recursively.
func Compose(outer System, inner []System) (System, error) {
	return quorum.NewComposite(outer, inner)
}

// AsMaskSystem returns a word-level view of the system: the system itself
// when it implements MaskSystem natively, or a cached-enumeration adapter
// otherwise. It fails with a BoundError for universes above 64 elements
// (use AsWideMaskSystem there) and with a BudgetError when adaptation
// would enumerate more quorums than quorum.EnumerationBudget.
func AsMaskSystem(sys System) (MaskSystem, error) { return quorum.Masked(sys) }

// AsWideMaskSystem returns a wide word-level view of the system: the
// system itself when it implements WideMaskSystem natively (every
// built-in construction, at every size), a one-word bridge for plain
// MaskSystems, or a cached-enumeration adapter under the
// quorum.EnumerationBudget guard. It fails with a BoundError above 4096
// elements.
func AsWideMaskSystem(sys System) (WideMaskSystem, error) { return quorum.WideMasked(sys) }

// MaskOfSet packs a set into a word mask (universes of at most 64
// elements).
func MaskOfSet(s *Set) uint64 { return quorum.MaskOf(s) }

// SetFromMask unpacks a word mask into a set over an n-element universe.
func SetFromMask(n int, mask uint64) *Set { return quorum.SetOfMask(n, mask) }

// NewSet returns an empty element set with capacity n.
func NewSet(n int) *Set { return bitset.New(n) }

// SetOf returns an element set of capacity n holding the given elements.
func SetOf(n int, elems ...int) *Set { return bitset.FromSlice(n, elems) }

// AllGreen returns an all-live coloring of n elements.
func AllGreen(n int) *Coloring { return coloring.New(n) }

// ColoringFromReds returns a coloring with exactly the listed elements
// failed.
func ColoringFromReds(n int, reds []int) *Coloring { return coloring.FromReds(n, reds) }

// IIDColoring draws a coloring where each element fails independently with
// probability p.
func IIDColoring(n int, p float64, rng *rand.Rand) *Coloring { return coloring.IID(n, p, rng) }

// IIDColoringWordsInto redraws a wide red mask in place under IID(p),
// consuming the same PRNG stream as IIDColoring (one Float64 per
// element); pair it with a WordsOracle's RedWords buffer in wide trial
// loops.
func IIDColoringWordsInto(dst []uint64, n int, p float64, rng *rand.Rand) {
	coloring.IIDWordsInto(dst, n, p, rng)
}

// NewOracle returns a probing oracle answering from the coloring, counting
// distinct probed elements.
func NewOracle(col *Coloring) Oracle { return probe.NewOracle(col) }

// VerifyWitness checks a witness against the system and true coloring.
func VerifyWitness(sys System, w Witness, col *Coloring) error {
	return probe.Verify(sys, w, col, nil)
}

// finderSystem is the contract of the generic fallback strategies.
type finderSystem interface {
	System
	Finder
}

// FindWitness locates a witness through the Prober capability — every
// built-in construction implements it with the paper's deterministic
// strategy (Probe_Maj, Probe_CW, Probe_Tree, Probe_HQS, the hub-first
// wheel scan, the weighted and m-ary majority scans) — falling back to a
// sequential scan for other systems that implement Finder.
func FindWitness(sys System, o Oracle) (Witness, error) {
	if pr, ok := sys.(Prober); ok {
		return pr.ProbeWitness(o), nil
	}
	if f, ok := sys.(finderSystem); ok {
		return core.SequentialScan(f, o), nil
	}
	return Witness{}, &UnsupportedError{What: "strategy", Name: sys.Name(), Hint: "Prober or Finder"}
}

// FindWitnessRandomized locates a witness through the RandomizedProber
// capability — every built-in construction implements it with the
// paper's randomized worst-case strategy (R_Probe_Maj, R_Probe_CW,
// R_Probe_Tree, IR_Probe_HQS and their wheel/vote/recursive-majority
// counterparts) — falling back to a random scan for Finder systems.
func FindWitnessRandomized(sys System, o Oracle, rng *rand.Rand) (Witness, error) {
	if pr, ok := sys.(RandomizedProber); ok {
		return pr.ProbeWitnessRandomized(o, rng), nil
	}
	if f, ok := sys.(finderSystem); ok {
		return core.RandomScan(f, o, rng), nil
	}
	return Witness{}, &UnsupportedError{What: "strategy", Name: sys.Name(), Hint: "RandomizedProber or Finder"}
}

// NewWordsOracle returns a wide-universe oracle over an all-green
// coloring of n elements; redraw its RedWords buffer (for example with
// an IID draw) and Reset it between trials.
func NewWordsOracle(n int) *WordsOracle { return probe.NewWordsOracle(n) }

// FindWitnessWords locates a witness through the WordsProber capability
// (implemented by every built-in construction): the same strategy as
// FindWitness, probing the words oracle with no per-probe allocation.
// The witness aliases oracle arena memory until the next Reset.
func FindWitnessWords(sys System, o *WordsOracle) (WordsWitness, error) {
	if wp, ok := sys.(WordsProber); ok {
		return wp.ProbeWitnessWords(o), nil
	}
	return WordsWitness{}, &UnsupportedError{What: "wide strategy", Name: sys.Name(), Hint: "WordsProber"}
}

// FindWitnessWordsRandomized is FindWitnessWords for the randomized
// worst-case strategies (RandomizedWordsProber).
func FindWitnessWordsRandomized(sys System, o *WordsOracle, rng *rand.Rand) (WordsWitness, error) {
	if wp, ok := sys.(RandomizedWordsProber); ok {
		return wp.ProbeWitnessWordsRandomized(o, rng), nil
	}
	return WordsWitness{}, &UnsupportedError{What: "wide randomized strategy", Name: sys.Name(), Hint: "RandomizedWordsProber"}
}

// Availability returns F_p(S): the probability that no live quorum exists
// when every element fails independently with probability p. Systems with
// the ExactAvailability capability (all built-ins) answer from their
// closed form; others are enumerated through the default session, which
// caches an availability polynomial per system (small universes only) —
// beyond the table bound with no closed form it panics with the
// actionable BoundError (use Evaluator.AvailabilityCtx for an error
// instead).
func Availability(sys System, p float64) float64 {
	return defaultEvaluator.Availability(sys, p)
}

// ExpectedProbes returns the exact expected probe count of the strategy
// used by FindWitness under IID(p) failures, through the
// ExactExpectation capability (implemented by all built-ins).
func ExpectedProbes(sys System, p float64) (float64, error) {
	return defaultEvaluator.ExpectedProbes(sys, p)
}

// EstimateAverageProbes estimates by simulation the average probes of the
// FindWitness strategy under IID(p) failures, returning the mean and the
// 95% confidence half-interval. Trials run in parallel with each worker
// reusing one coloring and one oracle; the summary is bit-identical to the
// sequential loop for the same (trials, seed). Sessions configure the
// same estimate with WithTrials/WithSeed/WithParallelism options.
func EstimateAverageProbes(sys System, p float64, trials int, seed uint64) (mean, halfCI float64, err error) {
	return NewEvaluator(WithTrials(trials), WithSeed(seed)).EstimateAverageProbes(sys, p)
}

// ProbeComplexity returns the exact deterministic worst-case probe
// complexity PC(S) for small universes (the paper's evasiveness measure),
// memoized by the default session.
func ProbeComplexity(sys System) (int, error) { return defaultEvaluator.ProbeComplexity(sys) }

// AverageProbeComplexity returns the exact probabilistic probe complexity
// PPC_p(S) — the optimal expected probes over all adaptive strategies —
// for small universes. Results and the underlying WitnessTable are
// memoized by the default session; dedicated sessions (NewEvaluator)
// isolate their own caches.
func AverageProbeComplexity(sys System, p float64) (float64, error) {
	return defaultEvaluator.AverageProbeComplexity(sys, p)
}

// OptimalStrategyTree materializes a worst-case-optimal probe strategy
// tree for small universes, sharing the default session's witness table.
func OptimalStrategyTree(sys System) (*StrategyNode, error) {
	return defaultEvaluator.OptimalStrategyTree(sys)
}

// RenderStrategyTree draws a probe strategy tree as ASCII art in the
// paper's Fig. 4 notation.
func RenderStrategyTree(nd *StrategyNode) string { return render.StrategyTree(nd) }

// RenderSystem draws the system layout as ASCII art, bracketing the
// elements of highlight (which may be nil), through the Renderer
// capability (implemented by all seven built-in constructions).
func RenderSystem(sys System, highlight *Set) (string, error) {
	if r, ok := sys.(Renderer); ok {
		return r.RenderASCII(highlight), nil
	}
	return "", &UnsupportedError{What: "renderer", Name: sys.Name(), Hint: "Renderer"}
}

// CheckNondominated verifies by exhaustive enumeration (small universes)
// that the system is a nondominated coterie.
func CheckNondominated(sys System) error { return quorum.CheckND(sys) }

// NewCluster returns a simulated cluster of n live fail-stop processors.
func NewCluster(n int) *Cluster { return cluster.New(n) }

// NewRegister returns a quorum-replicated register over the cluster using
// the system's FindWitness strategy for quorum discovery.
func NewRegister(c *Cluster, sys System) (*Register, error) {
	search, err := clusterSearch(sys)
	if err != nil {
		return nil, err
	}
	return cluster.NewRegister(c, sys, search)
}

// NewDistMutex returns a quorum-based mutex over the cluster using the
// system's FindWitness strategy for quorum discovery.
func NewDistMutex(c *Cluster, sys System) (*DistMutex, error) {
	search, err := clusterSearch(sys)
	if err != nil {
		return nil, err
	}
	return cluster.NewMutex(c, sys, search)
}

func clusterSearch(sys System) (func(o probe.Oracle) probe.Witness, error) {
	// Validate the dispatch once so operations cannot fail on strategy
	// lookup later.
	if _, err := FindWitness(sys, probe.NewOracle(coloring.New(sys.Size()))); err != nil {
		return nil, err
	}
	return func(o probe.Oracle) probe.Witness {
		w, err := FindWitness(sys, o)
		if err != nil {
			panic(err) // unreachable: dispatch validated in the constructor
		}
		return w
	}, nil
}
