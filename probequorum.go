// Package probequorum is a library for building, probing and measuring
// quorum systems under processor failures, reproducing Hassin & Peleg,
// "Average probe complexity in quorum systems" (PODC 2001 / JCSS 2006).
//
// A quorum system is a family of pairwise intersecting subsets of a
// universe of processors. When processors fail, a client must find a
// witness before acting: either a live (green) quorum or — for a
// nondominated coterie — a failed (red) quorum proving that no live
// quorum exists. This package provides:
//
//   - the classic nondominated coterie constructions: Majority, Wheel,
//     Crumbling Walls (with Triang), the Tree system and the Hierarchical
//     Quorum System (HQS);
//   - the paper's probing algorithms for the probabilistic failure model
//     and the randomized worst-case model, behind FindWitness and
//     FindWitnessRandomized;
//   - exact measures: availability F_p, worst-case probe complexity PC,
//     probabilistic probe complexity PPC_p (exact for small universes),
//     and expected probe counts of the built-in strategies;
//   - a simulated fail-stop cluster with quorum-replicated registers and
//     quorum-based mutual exclusion built on witness search.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure of the paper.
package probequorum

import (
	"fmt"
	"math/rand/v2"

	"probequorum/internal/availability"
	"probequorum/internal/bitset"
	"probequorum/internal/cluster"
	"probequorum/internal/coloring"
	"probequorum/internal/core"
	"probequorum/internal/probe"
	"probequorum/internal/quorum"
	"probequorum/internal/render"
	"probequorum/internal/sim"
	"probequorum/internal/strategy"
	"probequorum/internal/systems"
)

// Core abstractions, re-exported from the internal packages.
type (
	// System is a quorum system over the universe {0, ..., Size()-1}.
	System = quorum.System
	// MaskSystem is the word-level fast path of a system whose universe
	// fits one uint64: superset tests against precomputed quorum masks
	// with zero allocation. All built-in constructions implement it.
	MaskSystem = quorum.MaskSystem
	// Finder locates quorums inside an allowed element set.
	Finder = quorum.Finder
	// Set is a set of universe elements.
	Set = bitset.Set
	// Color is the probed state of an element: Green (live) or Red
	// (failed).
	Color = coloring.Color
	// Coloring is a full failure pattern.
	Coloring = coloring.Coloring
	// Witness is a monochromatic quorum: the output of a probe strategy.
	Witness = probe.Witness
	// Oracle reveals element colors one probe at a time.
	Oracle = probe.Oracle
	// StrategyNode is a node of an explicit probe strategy (decision)
	// tree.
	StrategyNode = strategy.Node

	// Majority is the majority system over an odd universe.
	Majority = systems.Maj
	// Wheel is the hub-and-rim system.
	Wheel = systems.Wheel
	// CrumblingWall is the (n1, ..., nk)-CW family, including Triang.
	CrumblingWall = systems.CW
	// TreeSystem is the binary-tree coterie of Agrawal & El-Abbadi.
	TreeSystem = systems.Tree
	// HQS is Kumar's hierarchical quorum system.
	HQS = systems.HQS
	// Vote is a weighted-voting system (Thomas-style), generalizing
	// Majority and subsuming the Wheel.
	Vote = systems.Vote
	// RecMaj is the recursive m-ary majority system; RecMaj(3, h) is the
	// HQS.
	RecMaj = systems.RecMaj

	// Cluster is a simulated set of fail-stop processors.
	Cluster = cluster.Cluster
	// Register is a quorum-replicated read/write register.
	Register = cluster.Register
	// DistMutex is quorum-based distributed mutual exclusion.
	DistMutex = cluster.Mutex
)

// Element colors.
const (
	Green = coloring.Green
	Red   = coloring.Red
)

// Cluster operation errors.
var (
	ErrNoLiveQuorum = cluster.ErrNoLiveQuorum
	ErrContended    = cluster.ErrContended
)

// NewMajority returns the majority system over n (odd) elements.
func NewMajority(n int) (*Majority, error) { return systems.NewMaj(n) }

// NewWheel returns the wheel system over n >= 3 elements.
func NewWheel(n int) (*Wheel, error) { return systems.NewWheel(n) }

// NewCrumblingWall returns the (widths[0], ..., widths[k-1])-CW system.
func NewCrumblingWall(widths []int) (*CrumblingWall, error) { return systems.NewCW(widths) }

// NewTriang returns the Triang system with k rows (row i has width i).
func NewTriang(k int) (*CrumblingWall, error) { return systems.NewTriang(k) }

// NewTree returns the tree system over a complete binary tree of the given
// height.
func NewTree(height int) (*TreeSystem, error) { return systems.NewTree(height) }

// NewHQS returns the hierarchical quorum system of the given height.
func NewHQS(height int) (*HQS, error) { return systems.NewHQS(height) }

// NewVote returns the weighted-voting system for the given positive
// weights (odd total).
func NewVote(weights []int) (*Vote, error) { return systems.NewVote(weights) }

// NewRecMaj returns the recursive m-ary majority system of the given
// height (m odd).
func NewRecMaj(m, height int) (*RecMaj, error) { return systems.NewRecMaj(m, height) }

// Compose builds the coterie composition of an outer system with one inner
// system per outer element; composing nondominated coteries yields a
// nondominated coterie. The HQS is Compose(Maj3, [Maj3, Maj3, Maj3])
// applied recursively.
func Compose(outer System, inner []System) (System, error) {
	return quorum.NewComposite(outer, inner)
}

// AsMaskSystem returns a word-level view of the system: the system itself
// when it implements MaskSystem natively, or a cached-enumeration adapter
// otherwise. It fails for universes above 64 elements.
func AsMaskSystem(sys System) (MaskSystem, error) { return quorum.Masked(sys) }

// MaskOfSet packs a set into a word mask (universes of at most 64
// elements).
func MaskOfSet(s *Set) uint64 { return quorum.MaskOf(s) }

// SetFromMask unpacks a word mask into a set over an n-element universe.
func SetFromMask(n int, mask uint64) *Set { return quorum.SetOfMask(n, mask) }

// NewSet returns an empty element set with capacity n.
func NewSet(n int) *Set { return bitset.New(n) }

// SetOf returns an element set of capacity n holding the given elements.
func SetOf(n int, elems ...int) *Set { return bitset.FromSlice(n, elems) }

// AllGreen returns an all-live coloring of n elements.
func AllGreen(n int) *Coloring { return coloring.New(n) }

// ColoringFromReds returns a coloring with exactly the listed elements
// failed.
func ColoringFromReds(n int, reds []int) *Coloring { return coloring.FromReds(n, reds) }

// IIDColoring draws a coloring where each element fails independently with
// probability p.
func IIDColoring(n int, p float64, rng *rand.Rand) *Coloring { return coloring.IID(n, p, rng) }

// NewOracle returns a probing oracle answering from the coloring, counting
// distinct probed elements.
func NewOracle(col *Coloring) Oracle { return probe.NewOracle(col) }

// VerifyWitness checks a witness against the system and true coloring.
func VerifyWitness(sys System, w Witness, col *Coloring) error {
	return probe.Verify(sys, w, col, nil)
}

// FindWitness locates a witness using the paper's deterministic strategy
// for the system's construction (Probe_Maj, Probe_CW, Probe_Tree,
// Probe_HQS), falling back to a sequential scan for other systems that
// implement Finder.
func FindWitness(sys System, o Oracle) (Witness, error) {
	switch s := sys.(type) {
	case *systems.Maj:
		return core.ProbeMaj(s, o), nil
	case *systems.CW:
		return core.ProbeCW(s, o), nil
	case *systems.Tree:
		return core.ProbeTree(s, o), nil
	case *systems.HQS:
		return core.ProbeHQS(s, o), nil
	case *systems.Vote:
		return core.ProbeVote(s, o), nil
	case *systems.RecMaj:
		return core.ProbeRecMaj(s, o), nil
	default:
		f, ok := sys.(interface {
			System
			Finder
		})
		if !ok {
			return Witness{}, fmt.Errorf("probequorum: no strategy for %s (system does not implement Finder)", sys.Name())
		}
		return core.SequentialScan(f, o), nil
	}
}

// FindWitnessRandomized locates a witness using the paper's randomized
// worst-case strategy for the system's construction (R_Probe_Maj,
// R_Probe_CW, R_Probe_Tree, IR_Probe_HQS), falling back to a random scan.
func FindWitnessRandomized(sys System, o Oracle, rng *rand.Rand) (Witness, error) {
	switch s := sys.(type) {
	case *systems.Maj:
		return core.RProbeMaj(s, o, rng), nil
	case *systems.CW:
		return core.RProbeCW(s, o, rng), nil
	case *systems.Tree:
		return core.RProbeTree(s, o, rng), nil
	case *systems.HQS:
		return core.IRProbeHQS(s, o, rng), nil
	default:
		f, ok := sys.(interface {
			System
			Finder
		})
		if !ok {
			return Witness{}, fmt.Errorf("probequorum: no strategy for %s (system does not implement Finder)", sys.Name())
		}
		return core.RandomScan(f, o, rng), nil
	}
}

// Availability returns F_p(S): the probability that no live quorum exists
// when every element fails independently with probability p. Closed forms
// are used for the built-in constructions and exhaustive enumeration
// otherwise (small universes only).
func Availability(sys System, p float64) float64 {
	return availability.Of(sys, p)
}

// ExpectedProbes returns the exact expected probe count of the strategy
// used by FindWitness under IID(p) failures, for the built-in
// constructions.
func ExpectedProbes(sys System, p float64) (float64, error) {
	switch s := sys.(type) {
	case *systems.Maj:
		return core.ExpectedProbeMajIID(s.Size(), p), nil
	case *systems.CW:
		return core.ExpectedProbeCWIID(s.Widths(), p), nil
	case *systems.Tree:
		return core.ExpectedProbeTreeIID(s.Height(), p), nil
	case *systems.HQS:
		return core.ExpectedProbeHQSIID(s.Height(), p), nil
	case *systems.RecMaj:
		return core.ExpectedProbeRecMajIID(s.Arity(), s.Height(), p), nil
	default:
		return 0, fmt.Errorf("probequorum: no closed form for %s", sys.Name())
	}
}

// EstimateAverageProbes estimates by simulation the average probes of the
// FindWitness strategy under IID(p) failures, returning the mean and the
// 95% confidence half-interval. Trials run in parallel with each worker
// reusing one coloring and one oracle; the summary is bit-identical to the
// sequential loop for the same (trials, seed).
func EstimateAverageProbes(sys System, p float64, trials int, seed uint64) (mean, halfCI float64, err error) {
	if _, e := FindWitness(sys, NewOracle(AllGreen(sys.Size()))); e != nil {
		return 0, 0, e
	}
	type buffers struct {
		col *coloring.Coloring
		o   *probe.ColoringOracle
	}
	s := sim.EstimateWith(trials, seed,
		func() *buffers {
			col := coloring.New(sys.Size())
			return &buffers{col: col, o: probe.NewOracle(col)}
		},
		func(rng *rand.Rand, b *buffers) float64 {
			coloring.IIDInto(b.col, p, rng)
			b.o.Reset()
			if _, e := FindWitness(sys, b.o); e != nil {
				panic(e) // unreachable: checked above
			}
			return float64(b.o.Probes())
		})
	lo, hi := s.CI95()
	return s.Mean, (hi - lo) / 2, nil
}

// ProbeComplexity returns the exact deterministic worst-case probe
// complexity PC(S) for small universes (the paper's evasiveness measure).
func ProbeComplexity(sys System) (int, error) { return strategy.OptimalPC(sys) }

// AverageProbeComplexity returns the exact probabilistic probe complexity
// PPC_p(S) — the optimal expected probes over all adaptive strategies —
// for small universes.
func AverageProbeComplexity(sys System, p float64) (float64, error) {
	return strategy.OptimalPPC(sys, p)
}

// OptimalStrategyTree materializes a worst-case-optimal probe strategy
// tree for small universes.
func OptimalStrategyTree(sys System) (*StrategyNode, error) { return strategy.BuildOptimalPC(sys) }

// RenderStrategyTree draws a probe strategy tree as ASCII art in the
// paper's Fig. 4 notation.
func RenderStrategyTree(nd *StrategyNode) string { return render.StrategyTree(nd) }

// RenderSystem draws the system layout as ASCII art, bracketing the
// elements of highlight (which may be nil). Supported for the crumbling
// wall, tree and HQS constructions.
func RenderSystem(sys System, highlight *Set) (string, error) {
	switch s := sys.(type) {
	case *systems.CW:
		return render.CW(s, highlight), nil
	case *systems.Tree:
		return render.Tree(s, highlight), nil
	case *systems.HQS:
		return render.HQS(s, highlight), nil
	default:
		return "", fmt.Errorf("probequorum: no renderer for %s", sys.Name())
	}
}

// CheckNondominated verifies by exhaustive enumeration (small universes)
// that the system is a nondominated coterie.
func CheckNondominated(sys System) error { return quorum.CheckND(sys) }

// NewCluster returns a simulated cluster of n live fail-stop processors.
func NewCluster(n int) *Cluster { return cluster.New(n) }

// NewRegister returns a quorum-replicated register over the cluster using
// the system's FindWitness strategy for quorum discovery.
func NewRegister(c *Cluster, sys System) (*Register, error) {
	search, err := clusterSearch(sys)
	if err != nil {
		return nil, err
	}
	return cluster.NewRegister(c, sys, search)
}

// NewDistMutex returns a quorum-based mutex over the cluster using the
// system's FindWitness strategy for quorum discovery.
func NewDistMutex(c *Cluster, sys System) (*DistMutex, error) {
	search, err := clusterSearch(sys)
	if err != nil {
		return nil, err
	}
	return cluster.NewMutex(c, sys, search)
}

func clusterSearch(sys System) (func(o probe.Oracle) probe.Witness, error) {
	// Validate the dispatch once so operations cannot fail on strategy
	// lookup later.
	if _, err := FindWitness(sys, probe.NewOracle(coloring.New(sys.Size()))); err != nil {
		return nil, err
	}
	return func(o probe.Oracle) probe.Witness {
		w, err := FindWitness(sys, o)
		if err != nil {
			panic(err) // unreachable: dispatch validated in the constructor
		}
		return w
	}, nil
}
