module probequorum

go 1.24
